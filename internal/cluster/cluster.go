package cluster

import (
	"context"
	crand "crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	mrand "math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"bundling"
	"bundling/internal/obs"
	"bundling/internal/wtp"
)

// Config tunes a coordinator Solver.
type Config struct {
	// Workers is the fleet, one Transport per worker (required). Stripe
	// spans are partitioned evenly across it: span i's primary is worker i,
	// its retry replica worker i+1 (mod fleet size).
	Workers []Transport
	// Corpus is the key the solver's spans register under on the workers.
	// Empty selects a process-unique key, so concurrent coordinators (and
	// successive re-uploads of one serving session) never collide on a
	// shared fleet.
	Corpus string
	// RequestTimeout bounds each worker RPC (0 = 10s).
	RequestTimeout time.Duration
	// FeedTimeout bounds a span (re-)feed, which ships the span's full
	// postings and needs a larger budget than a query RPC
	// (0 = max(60s, RequestTimeout)).
	FeedTimeout time.Duration
	// FeedBackoff is the initial suppression window after a failed span
	// feed to a worker (0 = 5s). Each consecutive failure to the same
	// worker doubles the window — with ±25% jitter so a fleet's retries
	// de-synchronize — up to FeedBackoffMax; a successful feed resets it.
	FeedBackoff time.Duration
	// FeedBackoffMax caps the exponential feed backoff (0 = 2m).
	FeedBackoffMax time.Duration
}

// Stats counts the coordinator's worker traffic; tests and the bench
// harness read it to prove which path served a workload.
type Stats struct {
	Workers        int   // fleet size
	Spans          int   // stripe spans the corpus was partitioned into
	RemoteCalls    int64 // RPCs issued (including retries)
	Refeeds        int64 // spans re-fed after a stale/missing rejection
	FeedFailures   int64 // span feeds that failed (worker backs off feedBackoff)
	ReplicaRetries int64 // span requests retried on the replica worker
	LocalFallbacks int64 // span requests computed from the local replica
	BreakerSkips   int64 // RPCs rejected without dialing by an open circuit breaker
	DeltaFeeds     int64 // spans rebased in place on a worker by a delta feed
	DeltaFallbacks int64 // delta feeds that fell back to a full span feed
}

// Solver is the coordinator: a bundling session whose striped reductions
// scatter across the worker fleet and gather in stripe order. It implements
// the same Solve/Evaluate/Stats surface as bundling.Solver (and the server
// package's Solver interface), so the bundled daemon serves it
// transparently. Like the local solver it is safe for concurrent use.
//
// Correctness never depends on the fleet: every RPC carries the corpus
// snapshot version (a stale or empty worker is re-fed and retried, never
// trusted), and a span whose workers stay unreachable is computed from the
// coordinator's local span store. A dead fleet degrades throughput to
// single-machine speed, not results.
type Solver struct {
	inner *bundling.Solver
	exec  *executor
	opts  bundling.Options
}

// NewSolver partitions the corpus's stripes into spans, feeds them to the
// workers, and builds the coordinator session on top.
func NewSolver(w *bundling.Matrix, opts bundling.Options, cfg Config) (*Solver, error) {
	if len(cfg.Workers) == 0 {
		return nil, fmt.Errorf("cluster: no workers configured")
	}
	corpus := cfg.Corpus
	if corpus == "" {
		corpus = uniqueCorpus()
	}
	timeout := cfg.RequestTimeout
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	feedTimeout := cfg.FeedTimeout
	if feedTimeout <= 0 {
		feedTimeout = 60 * time.Second
		if timeout > feedTimeout {
			feedTimeout = timeout
		}
	}
	feedBackoff := cfg.FeedBackoff
	if feedBackoff <= 0 {
		feedBackoff = 5 * time.Second
	}
	feedBackoffMax := cfg.FeedBackoffMax
	if feedBackoffMax <= 0 {
		feedBackoffMax = 2 * time.Minute
	}
	if feedBackoffMax < feedBackoff {
		feedBackoffMax = feedBackoff
	}
	x := &executor{
		corpus: corpus,
		// The wire version is a session-unique nonce, not the matrix
		// mutation counter: mutation counts of two different corpora can
		// coincide (a counter only counts Sets), and under a caller-chosen
		// Corpus key that coincidence would let a worker holding the old
		// corpus's span pass the staleness check. A fresh nonce per
		// coordinator session makes any cross-session aliasing impossible —
		// at worst an identical re-feed.
		version: snapshotNonce(),
		workers: cfg.Workers,
		timeout: timeout,
		feedTO:  feedTimeout,
		backoff: feedBackoff,
		backMax: feedBackoffMax,
	}
	// Build the session first: singletons index from its local shard, so
	// the executor is not consulted until it is wired below, and span
	// extraction reads the session's own shard instead of building a
	// second columnar index of the same matrix.
	inner, err := bundling.NewSolverOn(w, opts, x)
	if err != nil {
		return nil, err
	}
	// The aggregate pricing protocol must bucket worker histograms on
	// exactly the grid the session prices with; read it from the built
	// session instead of re-deriving option defaults.
	x.levels, x.alpha = inner.PricingGrid()
	stripeSize := inner.Stats().StripeSize
	for i, doc := range inner.Spans(len(cfg.Workers)) {
		doc.Version = x.version // ship the session nonce as the span identity
		sl := &spanSlot{
			key:           fmt.Sprintf("%s/%d", corpus, doc.Start),
			doc:           doc,
			primary:       i % len(cfg.Workers),
			feedFailUntil: make([]atomic.Int64, len(cfg.Workers)),
			feedFails:     make([]atomic.Int32, len(cfg.Workers)),
		}
		sl.hi = doc.End * stripeSize
		if sl.hi > w.Consumers() {
			sl.hi = w.Consumers()
		}
		x.spans = append(x.spans, sl)
	}
	// Feed every span to its primary up front, asynchronously under the
	// feed budget (a span upload can dwarf a query RPC, but an unresponsive
	// worker must not stall session creation for it — the eager feed is
	// purely best effort: an unfed worker is fed lazily by the first
	// request's re-feed path or covered by the replica and local fallback,
	// and surfaces through the Ready probe). Close waits for these, so a
	// released session cannot be resurrected by a straggling feed.
	for _, sl := range x.spans {
		x.feeding.Add(1)
		go func(sl *spanSlot) {
			defer x.feeding.Done()
			ctx, cancel := context.WithTimeout(context.Background(), x.feedTO)
			defer cancel()
			_ = x.workers[sl.primary].Assign(ctx, sl.key, &AssignRequest{Corpus: sl.key, Span: sl.doc})
		}(sl)
	}
	return &Solver{inner: inner, exec: x, opts: opts}, nil
}

// Close releases the solver's spans on every worker that may hold one
// (primary and retry replica), best effort: an unreachable worker simply
// keeps its copy until the fleet-side LRU bound recycles it. The serving
// layer calls this when a session is replaced, evicted or deleted, so
// long-gone corpora do not pin worker memory.
func (s *Solver) Close() error {
	x := s.exec
	x.feeding.Wait() // don't let a straggling eager feed resurrect a span
	x.forEachSpan(func(i int) {
		sl := x.spans[i]
		holders := []int{sl.primary}
		if len(x.workers) > 1 {
			holders = append(holders, (sl.primary+1)%len(x.workers))
		}
		for _, wi := range holders {
			ctx, cancel := context.WithTimeout(context.Background(), x.timeout)
			_ = x.workers[wi].Drop(ctx, sl.key)
			cancel()
		}
	})
	return nil
}

// Solve runs a configuration algorithm; its vector construction scatters
// across the fleet.
func (s *Solver) Solve(a bundling.Algorithm) (*bundling.Configuration, error) {
	return s.SolveContext(context.Background(), a)
}

// SolveContext is Solve under a caller context: every fan-out RPC and
// re-feed the run issues derives its deadline from ctx, and a canceled ctx
// aborts the run at its next iteration boundary — a disconnected client
// stops consuming the fleet.
func (s *Solver) SolveContext(ctx context.Context, a bundling.Algorithm) (*bundling.Configuration, error) {
	return s.inner.SolveContext(ctx, a)
}

// Evaluate prices a caller-proposed lineup. Pure-bundling evaluates take
// the aggregate fast path — per offer, two scatter/gather rounds of O(T)
// response data per span (max, then histogram) instead of shipping every
// interested consumer; mixed evaluates, which thread per-consumer state
// between offers, gather full vectors through the executor.
func (s *Solver) Evaluate(offers [][]int) (*bundling.Configuration, error) {
	return s.EvaluateContext(context.Background(), offers)
}

// EvaluateContext is Evaluate under a caller context; see SolveContext.
func (s *Solver) EvaluateContext(ctx context.Context, offers [][]int) (*bundling.Configuration, error) {
	if s.opts.Strategy == bundling.Mixed {
		return s.inner.EvaluateContext(ctx, offers)
	}
	return s.inner.EvaluateAggregatedContext(ctx, offers, s.exec)
}

// Algorithms lists the algorithms runnable on this session.
func (s *Solver) Algorithms() []bundling.Algorithm { return s.inner.Algorithms() }

// Stats returns the session's corpus and index statistics (the serving
// layer's cache-key source), identical to the local solver's.
func (s *Solver) Stats() bundling.SolverStats { return s.inner.Stats() }

// Corpus returns the key the solver's spans register under on the workers.
func (s *Solver) Corpus() string { return s.exec.corpus }

// ClusterStats snapshots the coordinator's worker-traffic counters.
func (s *Solver) ClusterStats() Stats {
	return Stats{
		Workers:        len(s.exec.workers),
		Spans:          len(s.exec.spans),
		RemoteCalls:    s.exec.remoteCalls.Load(),
		Refeeds:        s.exec.refeeds.Load(),
		FeedFailures:   s.exec.feedFailures.Load(),
		ReplicaRetries: s.exec.replicaRetries.Load(),
		LocalFallbacks: s.exec.localFallbacks.Load(),
		BreakerSkips:   s.exec.breakerSkips.Load(),
		DeltaFeeds:     s.exec.deltaFeeds.Load(),
		DeltaFallbacks: s.exec.deltaFallbacks.Load(),
	}
}

// Ready returns a readiness probe over the fleet for the serving daemon's
// /healthz gate: it errors while any worker is unreachable. The whole
// configured fleet counts as required — span partitions are rebuilt per
// corpus upload and any worker can become a primary or retry replica for
// the next session, so a fleet the operator declared via -workers is a
// fleet the operator expects up. Solves keep succeeding through the local
// fallback meanwhile — the probe is the operator's signal that the fleet
// no longer carries its share.
func Ready(workers []Transport, timeout time.Duration) func() error {
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	return func() error {
		// Probe concurrently: the gate must answer within one probe
		// timeout even when several workers are down, or orchestrator
		// health checks time out and kill a coordinator that is still
		// serving correctly via the local fallback.
		downs := make([]bool, len(workers))
		var wg sync.WaitGroup
		for i, t := range workers {
			wg.Add(1)
			go func(i int, t Transport) {
				defer wg.Done()
				ctx, cancel := context.WithTimeout(context.Background(), timeout)
				defer cancel()
				_, err := t.Health(ctx)
				downs[i] = err != nil
			}(i, t)
		}
		wg.Wait()
		var down []string
		for i, d := range downs {
			if d {
				down = append(down, workers[i].Addr())
			}
		}
		if len(down) > 0 {
			return fmt.Errorf("cluster: %d/%d workers unreachable: %s", len(down), len(workers), strings.Join(down, ", "))
		}
		return nil
	}
}

// --- executor ---------------------------------------------------------------

// spanSlot is one stripe span of the partition: its wire doc (kept for
// re-feeding workers), its primary worker, and a lazily materialized local
// store that serves as the last-resort replica.
type spanSlot struct {
	// key is the worker-side registration key: the corpus key plus the
	// span's first stripe. Keying per span (not per corpus) lets one worker
	// hold several spans of the same corpus — which is exactly what happens
	// when a replica covers a dead primary's span alongside its own.
	key     string
	doc     *wtp.SpanDoc
	hi      int // consumer upper bound (exclusive); the union cut boundary
	primary int
	// feedFailUntil[worker] is the unix-nano deadline before which re-feeds
	// to that worker are skipped after a failed span upload, so a worker
	// that cannot ingest the span is not hammered with the full transfer on
	// every request. feedFails[worker] counts consecutive failures, driving
	// the capped exponential growth of that window.
	feedFailUntil []atomic.Int64
	feedFails     []atomic.Int32

	localOnce sync.Once
	local     *wtp.SpanStore
}

// localStore materializes the span's local replica from the same wire doc
// the workers ingest, so fallback arithmetic is identical to a worker's.
func (sl *spanSlot) localStore() *wtp.SpanStore {
	sl.localOnce.Do(func() {
		sp, err := sl.doc.Store()
		if err != nil {
			// The doc came from our own shard; failing to rebuild it is a
			// bug, not an operational condition.
			panic(fmt.Sprintf("cluster: local span store: %v", err))
		}
		sl.local = sp
	})
	return sl.local
}

// executor is the scatter/gather StripeExecutor (and Aggregator) behind the
// coordinator: every reduction fans out per span, retries stale workers
// after a re-feed, falls back to the replica worker and then to the local
// span store, and gathers results in stripe order.
type executor struct {
	corpus  string
	version uint64 // session snapshot nonce, presented on every RPC
	workers []Transport
	spans   []*spanSlot
	timeout time.Duration
	feedTO  time.Duration
	backoff time.Duration // initial feed-failure suppression window
	backMax time.Duration // cap on the exponential feed backoff
	alpha   float64
	levels  int
	feeding sync.WaitGroup // in-flight eager span feeds

	remoteCalls    atomic.Int64
	refeeds        atomic.Int64
	feedFailures   atomic.Int64
	replicaRetries atomic.Int64
	localFallbacks atomic.Int64
	breakerSkips   atomic.Int64
	deltaFeeds     atomic.Int64
	deltaFallbacks atomic.Int64
}

// nextFeedBackoff computes the suppression window after the n-th (1-based)
// consecutive feed failure: initial·2^(n-1) with ±25% jitter, capped.
func (x *executor) nextFeedBackoff(n int32) time.Duration {
	d := x.backoff
	for i := int32(1); i < n && d < x.backMax; i++ {
		d *= 2
	}
	if d > x.backMax {
		d = x.backMax
	}
	// ±25% jitter de-synchronizes retries across coordinators and spans.
	j := time.Duration(mrand.Int63n(int64(d)/2+1)) - d/4
	return d + j
}

// forEachSpan runs fn for every span index, concurrently when there is more
// than one span.
func (x *executor) forEachSpan(fn func(i int)) {
	if len(x.spans) == 1 {
		fn(0)
		return
	}
	var wg sync.WaitGroup
	for i := range x.spans {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			fn(i)
		}(i)
	}
	wg.Wait()
}

// callSpan runs one span request through the retry ladder: primary (with a
// re-feed retry on a stale/missing span), then the replica worker (fed on
// demand), then the local span store. It cannot fail — the ladder ends on
// local compute — which is what lets the engine's vector paths stay
// error-free. Every RPC derives its deadline from parent, so the ladder
// never outlives its caller: under a canceled parent the workers fail fast
// and the local store answers (the engine aborts at its next cancellation
// check, discarding the result).
func callSpan[T any](x *executor, parent context.Context, sl *spanSlot, op string, call func(ctx context.Context, t Transport) (T, error), local func(sp *wtp.SpanStore) T) T {
	if v, err := tryWorker(x, parent, sl, sl.primary, op, "primary", call); err == nil {
		return v
	} else if len(x.workers) > 1 && parent.Err() == nil {
		x.replicaRetries.Add(1)
		if v, err = tryWorker(x, parent, sl, (sl.primary+1)%len(x.workers), op, "replica", call); err == nil {
			return v
		}
	}
	x.localFallbacks.Add(1)
	_, sp := obs.StartSpan(parent, "rpc")
	sp.Tag("op", op)
	sp.Tag("worker", "local")
	sp.Tag("outcome", "local_fallback")
	v := local(sl.localStore())
	sp.End()
	return v
}

// tryWorker issues op against one worker, re-feeding the span and retrying
// once when the worker reports it missing or stale. The re-feed runs under
// its own (larger) deadline — a span upload can dwarf a query RPC — and a
// failed feed backs the worker off with capped exponential jittered delays
// (see Config.FeedBackoff), so a worker that cannot ingest the span is not
// sent the full transfer on every request. An open circuit breaker (see
// NewBreaker) rejects before dialing; the rejection is counted and the
// ladder moves straight on to the replica or local store.
func tryWorker[T any](x *executor, parent context.Context, sl *spanSlot, wi int, op, role string, call func(ctx context.Context, t Transport) (T, error)) (T, error) {
	t := x.workers[wi]
	sctx, sp := obs.StartSpan(parent, "rpc")
	sp.Tag("op", op)
	sp.Tag("worker", t.Addr())
	sp.Tag("role", role)
	defer sp.End()
	ctx, cancel := context.WithTimeout(sctx, x.timeout)
	x.remoteCalls.Add(1)
	v, err := call(ctx, t)
	cancel()
	if err != nil && errors.Is(err, ErrBreakerOpen) {
		x.breakerSkips.Add(1)
		sp.Tag("outcome", "breaker_open")
		return v, err
	}
	if err == nil || !errors.Is(err, ErrSpan) || parent.Err() != nil {
		sp.Tag("outcome", outcomeTag(err))
		return v, err
	}
	if time.Now().UnixNano() < sl.feedFailUntil[wi].Load() {
		sp.Tag("outcome", "feed_backoff")
		return v, err
	}
	x.refeeds.Add(1)
	sp.Tag("refeed", true)
	fctx, fcancel := context.WithTimeout(sctx, x.feedTO)
	fctx, fsp := obs.StartSpan(fctx, "feed")
	fsp.Tag("worker", t.Addr())
	aerr := t.Assign(fctx, sl.key, &AssignRequest{Corpus: sl.key, Span: sl.doc})
	fsp.Tag("outcome", outcomeTag(aerr))
	fsp.End()
	fcancel()
	if aerr != nil {
		x.feedFailures.Add(1)
		n := sl.feedFails[wi].Add(1)
		sl.feedFailUntil[wi].Store(time.Now().Add(x.nextFeedBackoff(n)).UnixNano())
		sp.Tag("outcome", "feed_failed")
		return v, err
	}
	sl.feedFails[wi].Store(0)
	sl.feedFailUntil[wi].Store(0)
	rctx, rcancel := context.WithTimeout(sctx, x.timeout)
	defer rcancel()
	x.remoteCalls.Add(1)
	v, err = call(rctx, t)
	sp.Tag("outcome", outcomeTag(err))
	return v, err
}

// outcomeTag renders an RPC result for span tags.
func outcomeTag(err error) string {
	if err == nil {
		return "ok"
	}
	return "error"
}

// BundleVector implements config.StripeExecutor: per-span vectors gathered
// and concatenated in stripe order — identical to the local shard
// reduction.
func (x *executor) BundleVector(ctx context.Context, items []int, theta float64, dstIDs []int, dstVals []float64) ([]int, []float64) {
	parts := make([]VectorResponse, len(x.spans))
	x.forEachSpan(func(i int) {
		sl := x.spans[i]
		req := VectorRequest{Version: x.version, Items: items, Theta: theta}
		parts[i] = callSpan(x, ctx, sl, "vector",
			func(ctx context.Context, t Transport) (VectorResponse, error) {
				return t.Vector(ctx, sl.key, req)
			},
			func(sp *wtp.SpanStore) VectorResponse {
				ids, vals := sp.BundleVector(items, theta, nil, nil)
				return VectorResponse{IDs: ids, Vals: vals}
			})
	})
	dstIDs = dstIDs[:0]
	dstVals = dstVals[:0]
	for i := range parts {
		dstIDs = append(dstIDs, parts[i].IDs...)
		dstVals = append(dstVals, parts[i].Vals...)
	}
	return dstIDs, dstVals
}

// UnionVectors implements config.StripeExecutor: the two cached vectors are
// cut at span boundaries, each span's slices merged by the worker owning
// it, and the results concatenated in stripe order.
func (x *executor) UnionVectors(ctx context.Context, aIDs []int, aVals []float64, sa float64, bIDs []int, bVals []float64, sb float64, dstIDs []int, dstVals []float64) ([]int, []float64) {
	type cut struct{ a0, a1, b0, b1 int }
	cuts := make([]cut, len(x.spans))
	ai, bi := 0, 0
	for i, sl := range x.spans {
		c := cut{a0: ai, b0: bi}
		for ai < len(aIDs) && aIDs[ai] < sl.hi {
			ai++
		}
		for bi < len(bIDs) && bIDs[bi] < sl.hi {
			bi++
		}
		c.a1, c.b1 = ai, bi
		cuts[i] = c
	}
	parts := make([]VectorResponse, len(x.spans))
	x.forEachSpan(func(i int) {
		c := cuts[i]
		if c.a0 == c.a1 && c.b0 == c.b1 {
			return // nothing in this span
		}
		sl := x.spans[i]
		req := UnionRequest{
			Version: x.version,
			AIDs:    aIDs[c.a0:c.a1], AVals: aVals[c.a0:c.a1], SA: sa,
			BIDs: bIDs[c.b0:c.b1], BVals: bVals[c.b0:c.b1], SB: sb,
		}
		parts[i] = callSpan(x, ctx, sl, "union",
			func(ctx context.Context, t Transport) (VectorResponse, error) {
				return t.Union(ctx, sl.key, req)
			},
			func(sp *wtp.SpanStore) VectorResponse {
				ids, vals := sp.UnionVectors(req.AIDs, req.AVals, sa, req.BIDs, req.BVals, sb, nil, nil)
				return VectorResponse{IDs: ids, Vals: vals}
			})
	})
	dstIDs = dstIDs[:0]
	dstVals = dstVals[:0]
	for i := range parts {
		dstIDs = append(dstIDs, parts[i].IDs...)
		dstVals = append(dstVals, parts[i].Vals...)
	}
	return dstIDs, dstVals
}

// BundleMax implements config.Aggregator: span maxima reduced by max.
func (x *executor) BundleMax(ctx context.Context, items []int, theta float64) float64 {
	parts := make([]StatsResponse, len(x.spans))
	x.forEachSpan(func(i int) {
		sl := x.spans[i]
		req := StatsRequest{Version: x.version, Items: items, Theta: theta}
		parts[i] = callSpan(x, ctx, sl, "stats",
			func(ctx context.Context, t Transport) (StatsResponse, error) {
				return t.Stats(ctx, sl.key, req)
			},
			func(sp *wtp.SpanStore) StatsResponse {
				return spanStats(sp, items, theta)
			})
	})
	var maxW float64
	for i := range parts {
		if parts[i].Max > maxW {
			maxW = parts[i].Max
		}
	}
	return maxW
}

// BundleHistogram implements config.Aggregator: span histogram partials
// reduced by element-wise addition, in stripe order for determinism.
func (x *executor) BundleHistogram(ctx context.Context, items []int, theta float64, maxW float64, counts, sums []float64) {
	parts := make([]HistResponse, len(x.spans))
	x.forEachSpan(func(i int) {
		sl := x.spans[i]
		req := HistRequest{
			Version: x.version, Items: items, Theta: theta,
			MaxW: maxW, Alpha: x.alpha, Levels: x.levels,
		}
		parts[i] = callSpan(x, ctx, sl, "hist",
			func(ctx context.Context, t Transport) (HistResponse, error) {
				return t.Hist(ctx, sl.key, req)
			},
			func(sp *wtp.SpanStore) HistResponse {
				return spanHist(sp, items, theta, maxW, x.alpha, x.levels)
			})
	})
	for i := range parts {
		if len(parts[i].Counts) != len(counts) || len(parts[i].Sums) != len(sums) {
			// A worker answering with the wrong grid is a protocol bug;
			// recompute the span locally rather than corrupt the reduction.
			parts[i] = spanHist(x.spans[i].localStore(), items, theta, maxW, x.alpha, x.levels)
			x.localFallbacks.Add(1)
		}
		for t := range counts {
			counts[t] += parts[i].Counts[t]
			sums[t] += parts[i].Sums[t]
		}
	}
}

// corpusSeq disambiguates auto-generated corpus keys within one process.
var corpusSeq atomic.Int64

// uniqueCorpus generates a worker-side span key that cannot collide across
// coordinators sharing a fleet: random bytes plus a process-local sequence.
func uniqueCorpus() string {
	b := make([]byte, 6)
	_, _ = crand.Read(b)
	return fmt.Sprintf("c%x-%d", b, corpusSeq.Add(1))
}

// snapshotNonce draws the session's random span identity. The high bit is
// forced so a nonce can never equal a small matrix mutation counter, even
// under a failed entropy read.
func snapshotNonce() uint64 {
	b := make([]byte, 8)
	if _, err := crand.Read(b); err != nil {
		return uint64(time.Now().UnixNano()) | 1<<63
	}
	return binary.LittleEndian.Uint64(b) | 1<<63
}
