package pricing

// This file exposes the Sec. 4.2 pricing histogram as a reducible partial
// aggregate. A bundle's utility-maximizing price depends on its interested
// consumers only through (a) the maximum WTP and (b) the per-level histogram
// of counts and effective-WTP sums. Both reduce trivially across a
// partition of the consumer axis — max by max, histograms by element-wise
// addition — which is what lets a distributed evaluator price a bundle from
// per-span aggregates instead of shipping every consumer's WTP to the
// coordinator. Counts are integral, so their reduction is exact; the sums
// reduce with re-associated float addition, which is why cluster-vs-local
// equivalence is stated within 1e-9 rather than bitwise.

// Histogram accumulates the pricing histogram of wtps into counts and sums,
// each of length levels+1: counts[t] is the number of consumers whose
// effective WTP α·w falls in bucket t of the [0, α·maxW] grid, sums[t] their
// total effective WTP. maxW must be the global maximum WTP of the bundle's
// full consumer vector (not just this slice), so that every partition
// buckets against the same grid. Buckets follow PriceUtility exactly.
func Histogram(wtps []float64, alpha, maxW float64, levels int, counts, sums []float64) {
	if maxW <= 0 {
		return
	}
	T := levels
	for _, w := range wtps {
		idx := int(alpha*w/(alpha*maxW)*float64(T) + bucketSlack)
		if idx > T {
			idx = T
		}
		counts[idx]++
		sums[idx] += alpha * w
	}
}

// PriceUtilityFromHistogram prices a bundle from its (possibly reduced)
// pricing histogram: counts and sums as produced by Histogram against the
// global maximum WTP maxW, summed element-wise over any partition of the
// bundle's consumers. It returns the same quote PriceUtility computes from
// the raw WTP vector (exactly, under the deterministic model and the default
// objective; within float re-association noise otherwise).
//
// The exact-sigmoid evaluation (SetExact with a stochastic model) needs the
// raw per-consumer values and cannot price from a histogram; callers in that
// configuration must gather the full vector instead.
func (p *Pricer) PriceUtilityFromHistogram(counts, sums []float64, maxW float64, obj Objective) UtilityQuote {
	if maxW <= 0 {
		return UtilityQuote{}
	}
	sc := p.getScratch()
	defer p.putScratch(sc)
	return p.priceHistogram(sc, counts, sums, maxW, obj)
}

// priceHistogram evaluates every price level against a filled histogram —
// the shared tail of PriceUtilityIn and PriceUtilityFromHistogram. sc is
// only used for the bucket-midpoint buffer of the stochastic path.
func (p *Pricer) priceHistogram(sc *Scratch, counts, sums []float64, maxW float64, obj Objective) UtilityQuote {
	T := p.levels
	alpha := p.model.Alpha()
	best := UtilityQuote{}
	found := false
	if p.model.Deterministic() {
		var n, sw float64
		for t := T; t >= 1; t-- {
			n += counts[t]
			sw += sums[t]
			price := alpha * maxW * float64(t) / float64(T)
			q := evalUtility(price, n, sw, obj)
			if !found || q.Utility > best.Utility {
				best = q
				found = true
			}
		}
		return best
	}
	// Stochastic model: expected adopters and expected adopter WTP mass at
	// each price level, via bucket midpoints.
	mids := sc.mids[:T+1]
	for t := 0; t <= T; t++ {
		mids[t] = (float64(t) + 0.5) * maxW / float64(T)
		if mids[t] > maxW {
			mids[t] = maxW
		}
	}
	for t := 1; t <= T; t++ {
		price := alpha * maxW * float64(t) / float64(T)
		var n, sw float64
		for s := 0; s <= T; s++ {
			if counts[s] == 0 {
				continue
			}
			prob := p.model.Probability(price, mids[s])
			n += counts[s] * prob
			sw += sums[s] * prob
		}
		q := evalUtility(price, n, sw, obj)
		if !found || q.Utility > best.Utility {
			best = q
			found = true
		}
	}
	return best
}
