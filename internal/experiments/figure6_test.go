package experiments

import (
	"testing"
	"time"
)

func TestDecimate(t *testing.T) {
	mk := func(n int) []TradeoffPoint {
		pts := make([]TradeoffPoint, n)
		for i := range pts {
			pts[i] = TradeoffPoint{Iteration: i, Elapsed: time.Duration(i)}
		}
		return pts
	}
	// Short series pass through unchanged.
	short := mk(5)
	if got := decimate(short, 12); len(got) != 5 {
		t.Errorf("short series decimated to %d", len(got))
	}
	// Long series shrink to the cap, keeping first and last.
	long := mk(100)
	got := decimate(long, 12)
	if len(got) != 12 {
		t.Fatalf("decimated length = %d, want 12", len(got))
	}
	if got[0].Iteration != 0 || got[len(got)-1].Iteration != 99 {
		t.Errorf("endpoints not preserved: %d..%d", got[0].Iteration, got[len(got)-1].Iteration)
	}
	for i := 1; i < len(got); i++ {
		if got[i].Iteration <= got[i-1].Iteration {
			t.Errorf("decimated points not strictly increasing")
		}
	}
}

func TestScalesAreOrdered(t *testing.T) {
	s, b, f := SmallScale(), BenchScale(), FullScale()
	if !(s.Users < b.Users && b.Users < f.Users) {
		t.Errorf("user scales not increasing: %d, %d, %d", s.Users, b.Users, f.Users)
	}
	if !(s.Items < b.Items && b.Items < f.Items) {
		t.Errorf("item scales not increasing: %d, %d, %d", s.Items, b.Items, f.Items)
	}
}
