package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanTreeStructure(t *testing.T) {
	tr := NewTrace("", 0)
	ctx := ContextWithTrace(context.Background(), tr)

	ctx, root := StartSpan(ctx, "request")
	root.Tag("path", "/v1/x")

	cctx, child := StartSpan(ctx, "solve")
	child.Tag("algorithm", "matching")
	_, grand := StartSpan(cctx, "rpc")
	grand.End()
	child.End()

	_, sib := StartSpan(ctx, "persist")
	sib.End()
	root.End()

	doc := tr.Finish()
	if doc.TraceID == "" || len(doc.TraceID) != 16 {
		t.Fatalf("trace ID = %q, want 16 hex chars", doc.TraceID)
	}
	if len(doc.Spans) != 4 {
		t.Fatalf("got %d spans, want 4", len(doc.Spans))
	}
	byName := map[string]SpanDoc{}
	for _, sp := range doc.Spans {
		byName[sp.Name] = sp
	}
	if byName["request"].Parent != 0 {
		t.Errorf("root parent = %d, want 0", byName["request"].Parent)
	}
	if byName["solve"].Parent != byName["request"].ID {
		t.Errorf("solve parent = %d, want root %d", byName["solve"].Parent, byName["request"].ID)
	}
	if byName["rpc"].Parent != byName["solve"].ID {
		t.Errorf("rpc parent = %d, want solve %d", byName["rpc"].Parent, byName["solve"].ID)
	}
	if byName["persist"].Parent != byName["request"].ID {
		t.Errorf("persist parent = %d, want root %d", byName["persist"].Parent, byName["request"].ID)
	}
	if got := doc.RootTag("path"); got != "/v1/x" {
		t.Errorf("RootTag(path) = %q", got)
	}
	tree := doc.Tree()
	if !strings.Contains(tree, "request") || !strings.Contains(tree, "  solve") || !strings.Contains(tree, "    rpc") {
		t.Errorf("tree rendering missing indentation:\n%s", tree)
	}
}

func TestNilSpanIsNoOp(t *testing.T) {
	ctx, sp := StartSpan(context.Background(), "untraced")
	if sp != nil {
		t.Fatal("expected nil span without a trace")
	}
	sp.Tag("k", "v") // must not panic
	sp.End()
	Annotate(ctx, "k", "v")
	h := http.Header{}
	Inject(ctx, h)
	if len(h) != 0 {
		t.Errorf("Inject without trace wrote headers: %v", h)
	}
}

func TestSpanCapFeedsHookAndCountsDropped(t *testing.T) {
	tr := NewTrace("cap", 2)
	var mu sync.Mutex
	seen := 0
	tr.OnSpanEnd(func(string, time.Duration) { mu.Lock(); seen++; mu.Unlock() })
	ctx := ContextWithTrace(context.Background(), tr)
	for i := 0; i < 5; i++ {
		_, sp := StartSpan(ctx, "s")
		sp.End()
	}
	doc := tr.Finish()
	if len(doc.Spans) != 2 || doc.Dropped != 3 {
		t.Fatalf("spans=%d dropped=%d, want 2/3", len(doc.Spans), doc.Dropped)
	}
	if seen != 5 {
		t.Fatalf("hook saw %d spans, want 5", seen)
	}
	if !strings.Contains(doc.Tree(), "+3 spans dropped") {
		t.Errorf("tree missing dropped marker:\n%s", doc.Tree())
	}
}

func TestConcurrentSpans(t *testing.T) {
	tr := NewTrace("", 0)
	ctx := ContextWithTrace(context.Background(), tr)
	ctx, root := StartSpan(ctx, "root")
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, sp := StartSpan(ctx, "worker")
			sp.Tag("i", i)
			sp.End()
		}(i)
	}
	wg.Wait()
	root.End()
	doc := tr.Finish()
	if len(doc.Spans) != 33 {
		t.Fatalf("got %d spans, want 33", len(doc.Spans))
	}
	ids := map[int64]bool{}
	for _, sp := range doc.Spans {
		if ids[sp.ID] {
			t.Fatalf("duplicate span id %d", sp.ID)
		}
		ids[sp.ID] = true
	}
}

func TestInjectExtractRoundTrip(t *testing.T) {
	tr := NewTrace("abcd1234abcd1234", 0)
	ctx := ContextWithTrace(context.Background(), tr)
	ctx, sp := StartSpan(ctx, "root")
	h := http.Header{}
	Inject(ctx, h)
	traceID, spanID := Extract(h)
	if traceID != "abcd1234abcd1234" {
		t.Errorf("traceID = %q", traceID)
	}
	if spanID != 1 {
		t.Errorf("spanID = %d, want 1", spanID)
	}
	sp.End()

	if id, sid := Extract(http.Header{}); id != "" || sid != 0 {
		t.Errorf("Extract(empty) = %q/%d", id, sid)
	}
}

func TestRemoteSpan(t *testing.T) {
	doc := RemoteSpan("t1", 7, "worker.vector", time.Now(), 5*time.Millisecond, Tag{Key: "corpus", Value: "c"})
	if doc.TraceID != "t1" || len(doc.Spans) != 1 || doc.Spans[0].Parent != 7 {
		t.Fatalf("unexpected remote span doc: %+v", doc)
	}
	if doc.Spans[0].DurMS < 4.9 {
		t.Errorf("dur = %v", doc.Spans[0].DurMS)
	}
}

func TestRing(t *testing.T) {
	r := NewRing(3)
	for i := 0; i < 5; i++ {
		r.Push(TraceDoc{TraceID: fmt.Sprintf("t%d", i)})
	}
	got := r.Snapshot(0)
	if len(got) != 3 {
		t.Fatalf("got %d traces, want 3", len(got))
	}
	if got[0].TraceID != "t4" || got[1].TraceID != "t3" || got[2].TraceID != "t2" {
		t.Errorf("order = %s,%s,%s, want newest-first t4,t3,t2", got[0].TraceID, got[1].TraceID, got[2].TraceID)
	}
	if got := r.Snapshot(1); len(got) != 1 || got[0].TraceID != "t4" {
		t.Errorf("Snapshot(1) = %+v", got)
	}
	var nilRing *Ring
	nilRing.Push(TraceDoc{}) // must not panic
	if nilRing.Snapshot(0) != nil {
		t.Error("nil ring snapshot should be nil")
	}
}

func TestRingDocJSON(t *testing.T) {
	tr := NewTrace("", 0)
	ctx := ContextWithTrace(context.Background(), tr)
	_, sp := StartSpan(ctx, "request")
	sp.Tag("status", 200)
	sp.End()
	buf, err := json.Marshal(tr.Finish())
	if err != nil {
		t.Fatal(err)
	}
	var back TraceDoc
	if err := json.Unmarshal(buf, &back); err != nil {
		t.Fatal(err)
	}
	if back.Spans[0].Tags[0] != (Tag{Key: "status", Value: "200"}) {
		t.Errorf("tag round-trip = %+v", back.Spans[0].Tags)
	}
}

func TestNewLogger(t *testing.T) {
	var buf bytes.Buffer
	lg, err := NewLogger(&buf, "json", "warn")
	if err != nil {
		t.Fatal(err)
	}
	lg.Info("hidden")
	lg.Warn("shown", slog.String("k", "v"))
	var line map[string]any
	if err := json.Unmarshal(buf.Bytes(), &line); err != nil {
		t.Fatalf("not one JSON line: %q (%v)", buf.String(), err)
	}
	if line["msg"] != "shown" || line["k"] != "v" {
		t.Errorf("line = %v", line)
	}

	if _, err := NewLogger(&buf, "xml", "info"); err == nil {
		t.Error("want error for unknown format")
	}
	if _, err := NewLogger(&buf, "text", "loud"); err == nil {
		t.Error("want error for unknown level")
	}
	if _, err := NewLogger(&buf, "", ""); err != nil {
		t.Errorf("defaults should parse: %v", err)
	}
}

func TestReadRuntime(t *testing.T) {
	st := ReadRuntime()
	if st.Goroutines <= 0 || st.HeapAlloc == 0 {
		t.Errorf("implausible runtime stats: %+v", st)
	}
}
