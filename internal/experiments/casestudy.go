package experiments

import (
	"fmt"
	"math/rand"
	"sort"

	"bundling/internal/config"
	"bundling/internal/pricing"
	"bundling/internal/tabular"
	"bundling/internal/wtp"
)

// CaseStudyRow is one offer of the Table 6 walk-through.
type CaseStudyRow struct {
	Items      []int
	Price      float64
	AddBuyers  float64 // additional buyers the offer attracts
	AddRevenue float64 // additional revenue over the already-selected offers
	Selected   bool
}

// CaseStudyResult reproduces Table 6: a three-item mixed-bundling walk:
// price the singles, evaluate every 2-bundle against them, select the best,
// then grow it into a 3-bundle.
type CaseStudyResult struct {
	Rows []CaseStudyRow
}

// CaseStudy picks a promising item triple from the environment (one where
// mixed bundling actually adds buyers, as the paper's hand-picked books do)
// and reproduces the Table 6 accounting. A triple is "promising" when its
// best 2-bundle and the 3-bundle both add revenue; the search scans random
// triples among items sharing interested consumers and falls back to the
// best found.
func CaseStudy(env *Env, params config.Params, seed int64) (*CaseStudyResult, error) {
	params.Strategy = config.Mixed
	if err := params.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	w := env.W
	type scoredTriple struct {
		items [3]int
		res   *CaseStudyResult
		score float64
	}
	var best *scoredTriple
	const attempts = 300
	for a := 0; a < attempts; a++ {
		i := rng.Intn(w.Items())
		j := rng.Intn(w.Items())
		k := rng.Intn(w.Items())
		if i == j || j == k || i == k {
			continue
		}
		if !w.CommonInterest(i, j) || !(w.CommonInterest(j, k) || w.CommonInterest(i, k)) {
			continue
		}
		items := [3]int{i, j, k}
		sort.Ints(items[:])
		res, score, err := caseStudyTriple(w, items, params)
		if err != nil {
			return nil, err
		}
		if best == nil || score > best.score {
			best = &scoredTriple{items: items, res: res, score: score}
		}
		// Stop early only on a fully interesting triple: a selected
		// 2-bundle that then grows into a selected 3-bundle (the paper's
		// narrative).
		if score > 0 && len(res.Rows) == 7 && res.Rows[6].Selected {
			break
		}
	}
	if best == nil {
		return nil, fmt.Errorf("experiments: no viable case-study triple found")
	}
	return best.res, nil
}

// caseStudyTriple computes the Table 6 rows for a fixed triple; the score
// is the total additional revenue unlocked by bundling.
func caseStudyTriple(w *wtp.Matrix, items [3]int, params config.Params) (*CaseStudyResult, float64, error) {
	pr, err := pricing.New(params.Model, pricing.DefaultLevels)
	if err != nil {
		return nil, 0, err
	}
	// offer is a priced offer with its consumers' market state.
	type offer struct {
		items []int
		ids   []int
		vals  []float64
		quote pricing.Quote
		pay   []float64
		surp  []float64
	}
	mkSingle := func(it int) offer {
		o := offer{items: []int{it}}
		o.ids, o.vals = w.BundleVector(o.items, 0, nil, nil)
		o.quote = pr.PriceOptimal(o.vals)
		o.pay = make([]float64, len(o.ids))
		o.surp = make([]float64, len(o.ids))
		for j, v := range o.vals {
			p := params.Model.Probability(o.quote.Price, v)
			o.pay[j] = o.quote.Price * p
			if s := params.Model.Alpha()*v - o.quote.Price; s > 0 && p > 0 {
				o.surp[j] = s
			}
		}
		return o
	}
	singles := make([]offer, 3)
	res := &CaseStudyResult{}
	for idx, it := range items {
		singles[idx] = mkSingle(it)
		o := singles[idx]
		res.Rows = append(res.Rows, CaseStudyRow{
			Items:      o.items,
			Price:      o.quote.Price,
			AddBuyers:  o.quote.Adopters,
			AddRevenue: o.quote.Revenue,
			Selected:   true, // singles are always on sale under mixed bundling
		})
	}
	// combine prices a bundle over a set of disjoint existing offers.
	combine := func(parts ...offer) (offer, pricing.MixedQuote) {
		union := parts[0].items
		lo, hi := 0.0, 0.0
		for _, p := range parts[1:] {
			union = mergeSorted(union, p.items)
		}
		for _, p := range parts {
			if p.quote.Price > lo {
				lo = p.quote.Price
			}
			hi += p.quote.Price
		}
		o := offer{items: union}
		o.ids, o.vals = w.BundleVector(union, params.Theta, nil, nil)
		curPay := make([]float64, len(o.ids))
		curSurp := make([]float64, len(o.ids))
		for _, p := range parts {
			pp := scatter(o.ids, p.ids, p.pay)
			ps := scatter(o.ids, p.ids, p.surp)
			for j := range curPay {
				curPay[j] += pp[j]
				curSurp[j] += ps[j]
			}
		}
		mq := pr.PriceMixed(pricing.MixedOffer{CurPay: curPay, CurSurplus: curSurp, WB: o.vals, Lo: lo, Hi: hi})
		o.quote = pricing.Quote{Price: mq.Price, Revenue: mq.Revenue - mq.Baseline, Adopters: mq.Adopters}
		o.pay = make([]float64, len(o.ids))
		o.surp = make([]float64, len(o.ids))
		for j := range o.ids {
			pay, _, switched := pr.ResolveSwitch(o.vals[j], curPay[j], curSurp[j], mq.Price)
			o.pay[j] = pay
			if switched {
				if s := params.Model.Alpha()*o.vals[j] - mq.Price; s > 0 {
					o.surp[j] = s
				}
			} else {
				o.surp[j] = curSurp[j]
			}
		}
		return o, mq
	}
	// Every 2-bundle against its two singles.
	pairs := [][2]int{{0, 1}, {0, 2}, {1, 2}}
	bestPair := -1
	bestDelta := 0.0
	var bestPairOffer offer
	for pi, p := range pairs {
		o, mq := combine(singles[p[0]], singles[p[1]])
		delta := mq.Revenue - mq.Baseline
		res.Rows = append(res.Rows, CaseStudyRow{
			Items:      o.items,
			Price:      mq.Price,
			AddBuyers:  mq.Adopters,
			AddRevenue: delta,
		})
		if mq.Feasible && delta > bestDelta {
			bestDelta = delta
			bestPair = pi
			bestPairOffer = o
		}
	}
	score := 0.0
	if bestPair >= 0 {
		res.Rows[3+bestPair].Selected = true
		score += bestDelta
		// Grow the selected pair into the 3-bundle: components are the
		// pair (at its bundle price) and the remaining single.
		p := pairs[bestPair]
		rem := 3 - p[0] - p[1]
		_, mq := combine(bestPairOffer, singles[rem])
		delta := mq.Revenue - mq.Baseline
		res.Rows = append(res.Rows, CaseStudyRow{
			Items:      mergeSorted(bestPairOffer.items, singles[rem].items),
			Price:      mq.Price,
			AddBuyers:  mq.Adopters,
			AddRevenue: delta,
			Selected:   mq.Feasible,
		})
		if mq.Feasible {
			score += delta
		}
	}
	return res, score, nil
}

func mergeSorted(a, b []int) []int {
	out := append(append([]int(nil), a...), b...)
	sort.Ints(out)
	return out
}

// scatter aligns (srcIDs, srcVals) onto the unionIDs axis with zeros.
func scatter(unionIDs, srcIDs []int, srcVals []float64) []float64 {
	out := make([]float64, len(unionIDs))
	j := 0
	for i, id := range unionIDs {
		if j < len(srcIDs) && srcIDs[j] == id {
			out[i] = srcVals[j]
			j++
		}
	}
	return out
}

// Render prints the Table 6 layout.
func (r *CaseStudyResult) Render() string {
	t := tabular.New("Table 6: Case Study — Mixed Bundling",
		"bundle", "price", "add. buyers", "add. revenue", "selected")
	for _, row := range r.Rows {
		sel := ""
		if row.Selected {
			sel = "x"
		}
		t.AddRow(fmt.Sprintf("%v", row.Items),
			fmt.Sprintf("%.2f", row.Price),
			fmt.Sprintf("%.0f", row.AddBuyers),
			fmt.Sprintf("%.2f", row.AddRevenue),
			sel)
	}
	return t.String()
}
