package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"bundling/internal/config"
	"bundling/internal/metrics"
	"bundling/internal/pricing"
	"bundling/internal/setpack"
	"bundling/internal/tabular"
	"bundling/internal/wtp"
)

// WSPRow aggregates one sample size N of the weighted-set-packing
// comparison (Tables 4 and 5): mean revenue coverage and mean running time
// per solver, averaged over the retained samples.
type WSPRow struct {
	N       int
	Samples int
	// Coverage (%) per solver.
	MatchingCov, GreedyCov, OptimalCov, GreedyWSPCov float64
	// Running time (seconds) per solver. EnumSeconds is the shared cost of
	// enumerating and pricing all 2^N−1 candidate bundles, which the paper
	// reports separately (it dwarfs the ILP solve itself).
	MatchingSec, GreedySec, OptimalSec, GreedyWSPSec, EnumSeconds float64
	// OptimalFeasible is false when N exceeds the exact solver budget
	// (mirroring the paper's "-" cell at N = 25).
	OptimalFeasible bool
}

// WSPResult reproduces Tables 4 and 5.
type WSPResult struct {
	Rows []WSPRow
}

// WSPOptions tunes the comparison.
type WSPOptions struct {
	Sizes   []int // item sample sizes N (paper: 10, 15, 20, 25)
	Samples int   // retained samples per size (paper: 10)
	// MaxExactN caps the exact solver: beyond it the Optimal column is
	// marked infeasible, as the paper's ILP was at N = 25.
	MaxExactN int
	Seed      int64
	// RequireSize3 keeps only samples whose optimal pure configuration
	// contains a bundle of ≥ 3 items (the paper's retention rule). When
	// the exact solver is infeasible the rule uses the heuristic's result.
	RequireSize3 bool
	MaxAttempts  int // sampling attempts per retained sample
}

// DefaultWSPOptions returns a laptop-friendly configuration.
func DefaultWSPOptions() WSPOptions {
	return WSPOptions{
		Sizes:        []int{8, 10, 12, 14},
		Samples:      5,
		MaxExactN:    16,
		Seed:         7,
		RequireSize3: true,
		MaxAttempts:  25,
	}
}

// PaperWSPOptions mirrors the paper's N values; expect multi-minute runs
// at N = 20 and an infeasible Optimal at N = 25.
func PaperWSPOptions() WSPOptions {
	o := DefaultWSPOptions()
	o.Sizes = []int{10, 15, 20, 25}
	o.Samples = 10
	o.MaxExactN = 20
	return o
}

// WSP runs the comparison: for each sample, every subset of the N sampled
// items is priced (the enumeration the paper times at up to 15 hours for
// N = 25), the exact set-packing solver and Greedy WSP consume the dense
// weight vector, and the paper's Pure Matching / Pure Greedy heuristics run
// directly on the sampled WTP matrix.
func WSP(env *Env, opts WSPOptions, params config.Params) (*WSPResult, error) {
	if len(opts.Sizes) == 0 {
		opts = DefaultWSPOptions()
	}
	params.Strategy = config.Pure
	if params.Theta == 0 {
		// The paper's Amazon data yields size-≥3 bundles even at θ = 0; on
		// the synthetic corpus (independent star values) the optimum at
		// θ = 0 is almost always all-singletons, which would starve the
		// retention rule. A mild complementarity keeps the comparison
		// meaningful; see EXPERIMENTS.md.
		params.Theta = 0.05
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	res := &WSPResult{}
	for _, n := range opts.Sizes {
		if n > setpack.MaxItems {
			return nil, fmt.Errorf("experiments: N=%d exceeds setpack.MaxItems=%d", n, setpack.MaxItems)
		}
		row := WSPRow{N: n, OptimalFeasible: n <= opts.MaxExactN}
		attempts := 0
		requireSize3 := opts.RequireSize3
		for row.Samples < opts.Samples && attempts < opts.MaxAttempts*opts.Samples {
			attempts++
			if requireSize3 && attempts > (opts.MaxAttempts*opts.Samples)/2 && row.Samples == 0 {
				// The corpus is not producing size-3 bundles at this N;
				// fall back to unconditional retention rather than report
				// an empty row.
				requireSize3 = false
			}
			ds := env.DS.SampleItems(n, rng)
			w, err := ds.WTP(env.Lambda)
			if err != nil {
				return nil, err
			}
			sample, ok, err := wspSampleRun(w, n, row.OptimalFeasible, requireSize3, params)
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
			row.Samples++
			row.MatchingCov += sample.matchingCov
			row.GreedyCov += sample.greedyCov
			row.OptimalCov += sample.optimalCov
			row.GreedyWSPCov += sample.greedyWSPCov
			row.MatchingSec += sample.matchingSec
			row.GreedySec += sample.greedySec
			row.OptimalSec += sample.optimalSec
			row.GreedyWSPSec += sample.greedyWSPSec
			row.EnumSeconds += sample.enumSec
		}
		if row.Samples > 0 {
			f := float64(row.Samples)
			row.MatchingCov /= f
			row.GreedyCov /= f
			row.OptimalCov /= f
			row.GreedyWSPCov /= f
			row.MatchingSec /= f
			row.GreedySec /= f
			row.OptimalSec /= f
			row.GreedyWSPSec /= f
			row.EnumSeconds /= f
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

type wspSampleResult struct {
	matchingCov, greedyCov, optimalCov, greedyWSPCov float64
	matchingSec, greedySec, optimalSec, greedyWSPSec float64
	enumSec                                          float64
}

// wspSampleRun evaluates one retained sample.
func wspSampleRun(w *wtp.Matrix, n int, exact bool, requireSize3 bool, params config.Params) (wspSampleResult, bool, error) {
	var out wspSampleResult
	total := w.Total()
	if total <= 0 {
		return out, false, nil
	}
	pr, err := pricing.New(params.Model, pricing.DefaultLevels)
	if err != nil {
		return out, false, err
	}
	// Enumerate and price every candidate bundle (O(M·2^N), the step the
	// paper reports as the dominant cost of set-packing approaches).
	start := time.Now()
	weights := make([]float64, 1<<uint(n))
	items := make([]int, 0, n)
	var ids []int
	var vals []float64
	for mask := 1; mask < len(weights); mask++ {
		items = items[:0]
		for i := 0; i < n; i++ {
			if mask&(1<<uint(i)) != 0 {
				items = append(items, i)
			}
		}
		theta := params.Theta
		if len(items) == 1 {
			theta = 0
		}
		ids, vals = w.BundleVector(items, theta, ids, vals)
		weights[mask] = pr.PriceOptimal(vals).Revenue
	}
	out.enumSec = time.Since(start).Seconds()

	start = time.Now()
	var optimal setpack.Result
	if exact {
		optimal, err = setpack.ExactDP(n, weights)
		if err != nil {
			return out, false, err
		}
		out.optimalSec = time.Since(start).Seconds()
		out.optimalCov = metrics.Coverage(optimal.Weight, total)
	}
	start = time.Now()
	greedyWSP, err := setpack.GreedyRatio(n, weights)
	if err != nil {
		return out, false, err
	}
	out.greedyWSPSec = time.Since(start).Seconds()
	out.greedyWSPCov = metrics.Coverage(greedyWSP.Weight, total)

	start = time.Now()
	pm, err := config.MatchingBased(w, params)
	if err != nil {
		return out, false, err
	}
	out.matchingSec = time.Since(start).Seconds()
	out.matchingCov = metrics.Coverage(pm.Revenue, total)

	start = time.Now()
	pg, err := config.GreedyMerge(w, params)
	if err != nil {
		return out, false, err
	}
	out.greedySec = time.Since(start).Seconds()
	out.greedyCov = metrics.Coverage(pg.Revenue, total)

	if requireSize3 {
		// The paper retains only samples whose configuration contains a
		// bundle of size ≥ 3.
		has3 := false
		if exact {
			for _, m := range optimal.Masks {
				if popcount(m) >= 3 {
					has3 = true
					break
				}
			}
		} else {
			for _, b := range pm.Bundles {
				if len(b.Items) >= 3 {
					has3 = true
					break
				}
			}
		}
		if !has3 {
			return out, false, nil
		}
	}
	return out, true, nil
}

func popcount(m int) int {
	c := 0
	for m != 0 {
		m &= m - 1
		c++
	}
	return c
}

// Render prints the paper's Table 4 (revenue) and Table 5 (time) layouts.
func (r *WSPResult) Render() string {
	t4 := tabular.New("Table 4: Comparison to Weighted Set Packing — Revenue Coverage (%)",
		"N", "samples", "Pure Matching", "Pure Greedy", "Optimal", "Greedy WSP")
	for _, row := range r.Rows {
		opt := "-"
		if row.OptimalFeasible {
			opt = fmt.Sprintf("%.1f%%", row.OptimalCov)
		}
		t4.AddRow(fmt.Sprintf("%d", row.N), fmt.Sprintf("%d", row.Samples),
			fmt.Sprintf("%.1f%%", row.MatchingCov), fmt.Sprintf("%.1f%%", row.GreedyCov),
			opt, fmt.Sprintf("%.1f%%", row.GreedyWSPCov))
	}
	t5 := tabular.New("Table 5: Comparison to Weighted Set Packing — Running Time (seconds)",
		"N", "Pure Matching", "Pure Greedy", "Optimal", "Greedy WSP", "enumeration")
	for _, row := range r.Rows {
		opt := "-"
		if row.OptimalFeasible {
			opt = fmt.Sprintf("%.3f", row.OptimalSec)
		}
		t5.AddRow(fmt.Sprintf("%d", row.N),
			fmt.Sprintf("%.3f", row.MatchingSec), fmt.Sprintf("%.3f", row.GreedySec),
			opt, fmt.Sprintf("%.3f", row.GreedyWSPSec), fmt.Sprintf("%.3f", row.EnumSeconds))
	}
	return t4.String() + "\n" + t5.String()
}
