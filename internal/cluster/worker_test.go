package cluster

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"bundling"
	"bundling/internal/wtp"
)

// spanDocFor shards a matrix and serializes the full stripe range.
func spanDocFor(w *bundling.Matrix, stripeSize int) *wtp.SpanDoc {
	sh := w.Shard(stripeSize)
	return sh.Span(0, sh.Stripes())
}

// TestWorkerVersionCheck: a missing span and a stale version both answer
// ErrSpan — the coordinator's re-feed cue — and count as stale rejections.
func TestWorkerVersionCheck(t *testing.T) {
	wk := NewWorker(WorkerConfig{})
	w := testMatrix(t, 64, 6, 7)
	doc := spanDocFor(w, 16)

	if _, err := wk.Vector("missing", VectorRequest{Version: doc.Version, Items: []int{0}}); err == nil {
		t.Fatal("missing span accepted")
	}
	if err := wk.Assign("c", doc); err != nil {
		t.Fatal(err)
	}
	if _, err := wk.Vector("c", VectorRequest{Version: doc.Version + 1, Items: []int{0}}); err == nil {
		t.Fatal("stale version accepted")
	}
	if _, err := wk.Vector("c", VectorRequest{Version: doc.Version, Items: []int{0}}); err != nil {
		t.Fatalf("current version rejected: %v", err)
	}
	if wk.stale.Load() != 2 {
		t.Fatalf("stale rejections = %d, want 2", wk.stale.Load())
	}
}

// TestWorkerSpanLRU: spans beyond the bound evict the least recently used.
func TestWorkerSpanLRU(t *testing.T) {
	wk := NewWorker(WorkerConfig{MaxSpans: 2})
	w := testMatrix(t, 48, 5, 8)
	doc := spanDocFor(w, 16)
	for _, c := range []string{"a", "b"} {
		if err := wk.Assign(c, doc); err != nil {
			t.Fatal(err)
		}
	}
	// Touch "a" so "b" is the eviction victim.
	if _, err := wk.Vector("a", VectorRequest{Version: doc.Version, Items: []int{0}}); err != nil {
		t.Fatal(err)
	}
	if err := wk.Assign("c", doc); err != nil {
		t.Fatal(err)
	}
	h := wk.Health()
	if len(h.Spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(h.Spans))
	}
	for _, sp := range h.Spans {
		if sp.Corpus == "b" {
			t.Fatal("LRU victim 'b' still assigned")
		}
	}
}

// TestWorkerHTTPSurface drives the daemon's handler end to end: assign a
// span over HTTP, read it back from /healthz with its corpus version, get a
// vector, see a stale request answered 409, and scrape /metrics.
func TestWorkerHTTPSurface(t *testing.T) {
	wk := NewWorker(WorkerConfig{})
	ts := httptest.NewServer(wk.Handler())
	defer ts.Close()
	tr := NewHTTP(ts.URL, nil)

	w := testMatrix(t, 80, 6, 9)
	doc := spanDocFor(w, 16)
	ctx := t.Context()
	if err := tr.Assign(ctx, "demo", &AssignRequest{Corpus: "demo", Span: doc}); err != nil {
		t.Fatal(err)
	}

	h, err := tr.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Spans) != 1 {
		t.Fatalf("healthz spans = %d, want 1", len(h.Spans))
	}
	sp := h.Spans[0]
	if sp.Corpus != "demo" || sp.Version != doc.Version || sp.StartStripe != 0 || sp.EndStripe != doc.End {
		t.Fatalf("healthz span = %+v, want demo@%d stripes [0,%d)", sp, doc.Version, doc.End)
	}
	if sp.LoConsumer != 0 || sp.HiConsumer != w.Consumers() {
		t.Fatalf("healthz consumer bounds [%d,%d), want [0,%d)", sp.LoConsumer, sp.HiConsumer, w.Consumers())
	}

	resp, err := tr.Vector(ctx, "demo", VectorRequest{Version: doc.Version, Items: []int{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	sh := w.Shard(16)
	wantIDs, wantVals := sh.BundleVector([]int{0, 1}, 0, nil, nil)
	if len(resp.IDs) != len(wantIDs) {
		t.Fatalf("vector length %d != %d", len(resp.IDs), len(wantIDs))
	}
	for i := range resp.IDs {
		if resp.IDs[i] != wantIDs[i] || resp.Vals[i] != wantVals[i] {
			t.Fatalf("vector[%d] = (%d,%g), want (%d,%g)", i, resp.IDs[i], resp.Vals[i], wantIDs[i], wantVals[i])
		}
	}

	// Stale version over HTTP must surface as ErrSpan (status 409).
	_, err = tr.Vector(ctx, "demo", VectorRequest{Version: doc.Version + 9, Items: []int{0}})
	if err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("stale request error = %v", err)
	}
	hr, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	buf := make([]byte, 1<<16)
	n, _ := hr.Body.Read(buf)
	body := string(buf[:n])
	for _, want := range []string{"bundleworker_spans 1", "bundleworker_requests_total{op=\"vector\"}", "bundleworker_stale_rejections_total 1"} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %q in:\n%s", want, body)
		}
	}
}

// TestWorkerSpanMetricsOptIn: the per-span request gauges carry corpus
// keys — tenant data — so they must stay off the worker's open /metrics
// unless the operator opted in (-usage-metrics).
func TestWorkerSpanMetricsOptIn(t *testing.T) {
	w := testMatrix(t, 48, 5, 8)
	doc := spanDocFor(w, 16)
	for _, labeled := range []bool{false, true} {
		wk := NewWorker(WorkerConfig{UsageMetrics: labeled})
		if err := wk.Assign("secret-corpus/0", doc); err != nil {
			t.Fatal(err)
		}
		if _, err := wk.Vector("secret-corpus/0", VectorRequest{Version: doc.Version, Items: []int{0}}); err != nil {
			t.Fatal(err)
		}
		rec := httptest.NewRecorder()
		wk.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
		body := rec.Body.String()
		if got := strings.Contains(body, "bundleworker_span_requests{"); got != labeled {
			t.Errorf("UsageMetrics=%v: span gauge present=%v in:\n%s", labeled, got, body)
		}
		if labeled != strings.Contains(body, "secret-corpus") {
			t.Errorf("UsageMetrics=%v: corpus key exposure wrong", labeled)
		}
		if !strings.Contains(body, "bundleworker_spans 1") {
			t.Errorf("unlabeled span count must always serve:\n%s", body)
		}
	}
}

// TestClusterOverHTTP: the coordinator over real HTTP transports matches
// the local solver, and keeps matching (via replica + local fallback) after
// a worker daemon dies mid-session.
func TestClusterOverHTTP(t *testing.T) {
	w := testMatrix(t, 140, 10, 10)
	wk0, wk1 := NewWorker(WorkerConfig{}), NewWorker(WorkerConfig{})
	ts0 := httptest.NewServer(wk0.Handler())
	defer ts0.Close()
	ts1 := httptest.NewServer(wk1.Handler())
	defer ts1.Close()
	transports, err := Transports(ts0.URL+","+ts1.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	opts := bundling.Options{StripeSize: 16}
	cs, err := NewSolver(w, opts, Config{Workers: transports})
	if err != nil {
		t.Fatal(err)
	}
	local, err := bundling.NewSolver(w, opts)
	if err != nil {
		t.Fatal(err)
	}
	want, err := local.Solve(bundling.Matching())
	if err != nil {
		t.Fatal(err)
	}
	got, err := cs.Solve(bundling.Matching())
	if err != nil {
		t.Fatal(err)
	}
	sameConfig(t, "http", got, want)
	if st := cs.ClusterStats(); st.LocalFallbacks != 0 || st.RemoteCalls == 0 {
		t.Fatalf("unexpected traffic stats %+v", st)
	}

	// Kill worker 0: its span moves to the replica (worker 1); results hold.
	ts0.Close()
	wantEval, err := local.Evaluate(evalOffers())
	if err != nil {
		t.Fatal(err)
	}
	gotEval, err := cs.Evaluate(evalOffers())
	if err != nil {
		t.Fatal(err)
	}
	sameConfig(t, "http-degraded", gotEval, wantEval)
	if st := cs.ClusterStats(); st.ReplicaRetries == 0 && st.LocalFallbacks == 0 {
		t.Fatalf("dead worker served nothing yet stats show no retries: %+v", st)
	}
	if err := Ready(transports, 0)(); err == nil {
		t.Fatal("ready probe ignored the dead worker")
	}
}
