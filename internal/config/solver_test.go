package config

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"bundling/internal/wtp"
)

// testFreqOpts keeps the mined itemset count meaningful on the small
// equivalence corpora.
var testFreqOpts = FreqItemsetOptions{MinSupport: 0.05}

// solverAlgorithms lists the five algorithms as run by the session tests.
func solverAlgorithms() []Algorithm {
	return []Algorithm{
		ComponentsAlgorithm(),
		Optimal2Algorithm(),
		MatchingAlgorithm(),
		GreedyAlgorithm(),
		FreqItemsetAlgorithm(testFreqOpts),
	}
}

// oneShot runs an algorithm through the compatibility one-shot entry
// points (fresh Solver per call), the path every pre-session caller used.
func oneShot(t testing.TB, a Algorithm, w *wtp.Matrix, params Params) *Configuration {
	t.Helper()
	var cfg *Configuration
	var err error
	switch a.Name() {
	case "components":
		cfg, err = Components(w, params)
	case "optimal2":
		cfg, err = Optimal2Sized(w, params)
	case "matching":
		cfg, err = MatchingBased(w, params)
	case "greedy":
		cfg, err = GreedyMerge(w, params)
	case "freqitemset":
		cfg, err = FreqItemset(w, params, testFreqOpts)
	default:
		t.Fatalf("unknown algorithm %q", a.Name())
	}
	if err != nil {
		t.Fatalf("%s one-shot: %v", a.Name(), err)
	}
	return cfg
}

// TestSolverMatchesOneShot is the session equivalence property of the
// acceptance criteria: for all five algorithms, pure and mixed, a shared
// long-lived Solver produces the same configuration (revenues within 1e-9)
// as the one-shot entry points.
func TestSolverMatchesOneShot(t *testing.T) {
	w := equivMatrix(t, 31, 90, 26, 0.25)
	for _, strategy := range []Strategy{Pure, Mixed} {
		params := DefaultParams()
		params.Strategy = strategy
		params.Theta = -0.05
		s, err := NewSolver(w, params)
		if err != nil {
			t.Fatal(err)
		}
		for _, a := range solverAlgorithms() {
			label := fmt.Sprintf("%s/%v", a.Name(), strategy)
			got, err := s.Solve(a)
			if err != nil {
				t.Fatalf("%s (session): %v", label, err)
			}
			want := oneShot(t, a, w, params)
			sameConfiguration(t, label, got, want, 1e-9)
		}
	}
}

// TestSolverStripeSizesAgree sweeps stripe sizes, including degenerate
// ones, and requires identical results: stripe layout is a storage choice,
// never a semantic one.
func TestSolverStripeSizesAgree(t *testing.T) {
	w := equivMatrix(t, 7, 70, 20, 0.3)
	for _, strategy := range []Strategy{Pure, Mixed} {
		var base *Configuration
		for _, size := range []int{0, 1, 16, 70, 1000} {
			params := DefaultParams()
			params.Strategy = strategy
			params.StripeSize = size
			s, err := NewSolver(w, params)
			if err != nil {
				t.Fatal(err)
			}
			cfg, err := s.Solve(MatchingAlgorithm())
			if err != nil {
				t.Fatal(err)
			}
			if base == nil {
				base = cfg
				continue
			}
			sameConfiguration(t, fmt.Sprintf("%v/stripe=%d", strategy, size), cfg, base, 1e-9)
		}
	}
}

// TestSolverConcurrent is the shared-session race test of the acceptance
// criteria: many goroutines run all algorithms (and Evaluate traffic)
// concurrently against one Solver, and every result must equal the
// one-shot path within 1e-9. Run with -race.
func TestSolverConcurrent(t *testing.T) {
	w := equivMatrix(t, 47, 80, 22, 0.25)
	for _, strategy := range []Strategy{Pure, Mixed} {
		params := DefaultParams()
		params.Strategy = strategy
		params.Parallelism = 2 // exercise the worker pool under contention
		s, err := NewSolver(w, params)
		if err != nil {
			t.Fatal(err)
		}
		algs := solverAlgorithms()
		want := make([]*Configuration, len(algs))
		for i, a := range algs {
			want[i] = oneShot(t, a, w, params)
		}
		const rounds = 3
		var wg sync.WaitGroup
		errs := make(chan error, len(algs)*rounds+rounds)
		for r := 0; r < rounds; r++ {
			for i, a := range algs {
				wg.Add(1)
				go func(i int, a Algorithm) {
					defer wg.Done()
					got, err := s.Solve(a)
					if err != nil {
						errs <- fmt.Errorf("%s: %w", a.Name(), err)
						return
					}
					if diff := math.Abs(got.Revenue - want[i].Revenue); diff > 1e-9 {
						errs <- fmt.Errorf("%s/%v: concurrent revenue %.12f, one-shot %.12f (diff %g)",
							a.Name(), strategy, got.Revenue, want[i].Revenue, diff)
					}
				}(i, a)
			}
			// What-if Evaluate traffic interleaved with the solves.
			wg.Add(1)
			go func() {
				defer wg.Done()
				if _, err := s.Evaluate([][]int{{0, 1}, {2}, {3, 4, 5}}); err != nil {
					errs <- fmt.Errorf("evaluate: %w", err)
				}
			}()
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Error(err)
		}
	}
}

// TestSolverRepeatedSolvesPure verifies a run never corrupts the session:
// the same algorithm solved twice on one Solver returns identical results,
// and an Optimal2 run's k=2 override does not leak into a later unbounded
// matching run.
func TestSolverRepeatedSolvesPure(t *testing.T) {
	w := equivMatrix(t, 13, 60, 18, 0.3)
	params := DefaultParams()
	s, err := NewSolver(w, params)
	if err != nil {
		t.Fatal(err)
	}
	first, err := s.Solve(GreedyAlgorithm())
	if err != nil {
		t.Fatal(err)
	}
	second, err := s.Solve(GreedyAlgorithm())
	if err != nil {
		t.Fatal(err)
	}
	sameConfiguration(t, "greedy repeat", second, first, 0)

	unbounded, err := s.Solve(MatchingAlgorithm())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Solve(Optimal2Algorithm()); err != nil {
		t.Fatal(err)
	}
	again, err := s.Solve(MatchingAlgorithm())
	if err != nil {
		t.Fatal(err)
	}
	sameConfiguration(t, "matching after optimal2", again, unbounded, 0)
	maxSize := 0
	for _, b := range unbounded.Bundles {
		if b.Size() > maxSize {
			maxSize = b.Size()
		}
	}
	if maxSize <= 2 {
		t.Skipf("corpus too small to distinguish k=2 from unbounded (max bundle %d)", maxSize)
	}
}

// TestAlgorithmRegistry pins the registry: five algorithms, stable names,
// and name-based lookup for CLIs.
func TestAlgorithmRegistry(t *testing.T) {
	want := []string{"components", "optimal2", "matching", "greedy", "freqitemset"}
	algs := Algorithms()
	if len(algs) != len(want) {
		t.Fatalf("Algorithms() returned %d entries, want %d", len(algs), len(want))
	}
	for i, a := range algs {
		if a.Name() != want[i] {
			t.Errorf("Algorithms()[%d].Name() = %q, want %q", i, a.Name(), want[i])
		}
		byName, err := AlgorithmByName(want[i])
		if err != nil {
			t.Errorf("AlgorithmByName(%q): %v", want[i], err)
		} else if byName.Name() != want[i] {
			t.Errorf("AlgorithmByName(%q).Name() = %q", want[i], byName.Name())
		}
	}
	if _, err := AlgorithmByName("simulated-annealing"); err == nil {
		t.Error("AlgorithmByName accepted an unknown name")
	}
}

// TestSolverEvaluateMatchesOneShot checks the session Evaluate path against
// the one-shot Evaluate for both strategies.
func TestSolverEvaluateMatchesOneShot(t *testing.T) {
	w := equivMatrix(t, 19, 50, 14, 0.35)
	offers := [][]int{{0, 1, 2}, {3}, {5, 6}}
	for _, strategy := range []Strategy{Pure, Mixed} {
		params := DefaultParams()
		params.Strategy = strategy
		s, err := NewSolver(w, params)
		if err != nil {
			t.Fatal(err)
		}
		got, err := s.Evaluate(offers)
		if err != nil {
			t.Fatal(err)
		}
		want, err := Evaluate(w, offers, params)
		if err != nil {
			t.Fatal(err)
		}
		sameConfiguration(t, fmt.Sprintf("evaluate/%v", strategy), got, want, 1e-9)
	}
}
