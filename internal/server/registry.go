package server

import (
	"container/list"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"bundling"
)

// errAlreadyInstalled reports an if-absent install that found a session
// under the ID — the caller serves that session instead.
var errAlreadyInstalled = errors.New("session already installed")

// errReplacedMeanwhile reports a conditional replace whose expected
// predecessor is no longer installed — a concurrent upload or mutation won;
// the mutation handler maps it to 409.
var errReplacedMeanwhile = errors.New("session concurrently replaced")

// session is one named, long-lived corpus session: an indexed
// bundling.Solver plus the serving plumbing layered on it (per-session
// evaluate batcher, cache-key identity). Sessions are immutable after
// creation — a re-upload builds a new session under the same ID — so any
// number of handler goroutines may share one.
type session struct {
	id        string
	version   int    // registry upload generation for this ID
	tenant    string // owning tenant ("" = public / uploaded with auth off)
	solver    Solver // local bundling.Solver or the cluster coordinator
	opts      bundling.Options
	stats     bundling.SolverStats
	createdAt time.Time
	batcher   *batcher

	elem *list.Element // registry LRU slot, guarded by the registry mutex
}

// cacheKey builds a result-cache key scoped to this exact corpus snapshot:
// the session's ID, its upload generation and the matrix version the solver
// indexed. A re-uploaded corpus changes the generation (and in practice the
// matrix version), so stale results can never be served across versions.
func (s *session) cacheKey(op, detail string) string {
	return fmt.Sprintf("%s@%d.%d|%s|%s", s.id, s.version, s.stats.Version, op, detail)
}

// info snapshots the session for listings.
func (s *session) info() CorpusInfo {
	return CorpusInfo{
		ID:        s.id,
		Version:   s.version,
		Tenant:    s.tenant,
		Consumers: s.stats.Consumers,
		Items:     s.stats.Items,
		Entries:   s.stats.Entries,
		Stripes:   s.stats.Stripes,
		TotalWTP:  s.stats.TotalWTP,
		Options:   NewOptionsDoc(s.opts),
		CreatedAt: s.createdAt,
	}
}

// registry holds the live sessions keyed by corpus ID, bounded by an LRU
// eviction policy: creating a session beyond the cap evicts the
// least-recently-used one. Upload generations survive eviction (versions
// map), so an ID that is evicted and later re-created continues its version
// sequence and can never collide with cached results of an earlier life.
type registry struct {
	authOn bool   // enforce corpus ownership on installs (auth is enabled)
	store  *Store // durable ownership + quota source for evicted sessions (nil = memory only)

	mu       sync.Mutex
	max      int
	sessions map[string]*session
	lru      *list.List     // front = most recently used; values are *session
	versions map[string]int // last assigned version per ID, survives eviction
	seq      int            // server-assigned ID counter
}

func newRegistry(max int) *registry {
	if max < 1 {
		max = 1
	}
	return &registry{
		max:      max,
		sessions: make(map[string]*session),
		lru:      list.New(),
		versions: make(map[string]int),
	}
}

// nextID returns a fresh server-assigned corpus ID.
func (r *registry) nextID() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	for {
		r.seq++
		id := fmt.Sprintf("corpus-%d", r.seq)
		if _, taken := r.sessions[id]; !taken {
			return id
		}
	}
}

// put registers (or replaces) a session under sess.id, assigns its upload
// generation, and returns the session it replaced (nil if the ID was new)
// plus the sessions evicted to stay within the bound. The caller releases
// replaced and evicted sessions' engines.
// quotaError reports which tenant quota an admission would exceed; the
// handler maps it to 429 and the matching rejection counter.
type quotaError struct {
	kind string // "corpora" or "entries"
	msg  string
}

func (e *quotaError) Error() string { return e.msg }

// ownerError reports an install under an ID another tenant owns; the
// handler maps it to 403.
type ownerError struct{ id string }

func (e *ownerError) Error() string {
	return fmt.Sprintf("corpus %q belongs to another tenant", e.id)
}

// ownerCheckLocked rejects an install under an ID another tenant owns. The
// live session is authoritative; when the session has been LRU-evicted the
// persisted record still carries ownership, so eviction never opens a
// takeover window. Callers hold r.mu.
func (r *registry) ownerCheckLocked(tenant, id string) error {
	if !r.authOn || id == "" {
		return nil
	}
	owner, known := "", false
	if sess, ok := r.sessions[id]; ok {
		owner, known = sess.tenant, true
	} else if r.store != nil {
		owner, known = r.store.Owner(id)
	}
	if known && owner != "" && owner != tenant {
		return &ownerError{id: id}
	}
	return nil
}

// quotaCheckLocked verifies that tenant may install a corpus of the given
// size under id. Holdings are the union of live sessions and the store's
// persisted corpora, deduplicated by ID: an LRU-evicted corpus keeps its
// record (and resurrects on restart), so it keeps counting. Replacing a
// corpus the tenant already owns is always within the corpus-count quota
// (and frees the predecessor's entries); taking over a public corpus is not
// — it grows the tenant's holdings. Callers hold r.mu.
func (r *registry) quotaCheckLocked(tenant, id string, entries int, q Quotas) error {
	if q.MaxCorpora <= 0 && q.MaxEntries <= 0 {
		return nil
	}
	existingTenant, existingEntries, exists := "", 0, false
	if sess, ok := r.sessions[id]; ok {
		existingTenant, existingEntries, exists = sess.tenant, sess.stats.Entries, true
	} else if r.store != nil {
		if t, _, n, ok := r.store.LiveInfo(id); ok {
			existingTenant, existingEntries, exists = t, n, true
		}
	}
	ownReplace := exists && existingTenant == tenant
	owned, used := 0, 0
	counted := make(map[string]bool, len(r.sessions))
	for _, sess := range r.sessions {
		counted[sess.id] = true
		if sess.tenant == tenant {
			owned++
			used += sess.stats.Entries
		}
	}
	if r.store != nil {
		r.store.forEachLive(func(cid, ct string, n int) {
			if !counted[cid] && ct == tenant {
				owned++
				used += n
			}
		})
	}
	if q.MaxCorpora > 0 && !ownReplace && owned >= q.MaxCorpora {
		return &quotaError{"corpora", fmt.Sprintf("corpus quota exceeded (%d corpora)", q.MaxCorpora)}
	}
	if q.MaxEntries > 0 {
		if ownReplace {
			used -= existingEntries
		}
		if used+entries > q.MaxEntries {
			return &quotaError{"entries", fmt.Sprintf("entry quota exceeded (%d of %d entries in use, corpus adds %d)",
				used, q.MaxEntries, entries)}
		}
	}
	return nil
}

// admitLocked is the full admission gate — ownership, then quotas. Callers
// hold r.mu.
func (r *registry) admitLocked(tenant, id string, entries int, q Quotas) error {
	if err := r.ownerCheckLocked(tenant, id); err != nil {
		return err
	}
	return r.quotaCheckLocked(tenant, id, entries, q)
}

// admitCheck is the advisory pre-index admission gate: the same ownership
// and quota checks putAt enforces atomically, run before the expensive
// engine build so a doomed upload is rejected cheaply.
func (r *registry) admitCheck(tenant, id string, entries int, q Quotas) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.admitLocked(tenant, id, entries, q)
}

// putAt installs a session. Version 0 assigns the next generation of the
// ID's sequence (the upload path); a positive version installs at exactly
// that generation (the restart-restore path, replaying a generation the
// store already assigned) while keeping the ID's counter monotonic. With
// enforce set the tenant ownership and quota checks run atomically with the
// install, so concurrent uploads cannot slip past the gate together and no
// eviction or race during the index build can open a takeover window. With
// ifAbsent set the install fails with errAlreadyInstalled when any session
// holds the ID — the paths replaying disk state (lazy reload, persist
// recovery) must never stomp a session a concurrent upload installed.
func (r *registry) putAt(sess *session, version int, q Quotas, enforce, ifAbsent bool) (replaced *session, evicted []*session, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if ifAbsent {
		if _, ok := r.sessions[sess.id]; ok {
			return nil, nil, errAlreadyInstalled
		}
	}
	if enforce {
		if err := r.admitLocked(sess.tenant, sess.id, sess.stats.Entries, q); err != nil {
			return nil, nil, err
		}
	}
	if version <= 0 {
		r.versions[sess.id]++
		version = r.versions[sess.id]
	} else if version > r.versions[sess.id] {
		r.versions[sess.id] = version
	}
	sess.version = version
	if old, ok := r.sessions[sess.id]; ok {
		r.lru.Remove(old.elem)
		replaced = old
	}
	sess.elem = r.lru.PushFront(sess)
	r.sessions[sess.id] = sess
	for len(r.sessions) > r.max {
		tail := r.lru.Back()
		victim := tail.Value.(*session)
		r.lru.Remove(tail)
		delete(r.sessions, victim.id)
		evicted = append(evicted, victim)
	}
	return replaced, evicted, nil
}

// putReplacing installs sess at the next generation only if old is still
// the installed session for the ID — the delta-mutation path, whose new
// session was derived from old and must not stomp a session a concurrent
// upload or mutation installed from a different base. The entry quota is
// re-checked atomically (a delta can grow the corpus); ownership needs no
// check, the new session inherits old's tenant.
func (r *registry) putReplacing(sess, old *session, q Quotas) (replaced *session, evicted []*session, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.sessions[sess.id] != old {
		return nil, nil, errReplacedMeanwhile
	}
	if err := r.quotaCheckLocked(sess.tenant, sess.id, sess.stats.Entries, q); err != nil {
		return nil, nil, err
	}
	r.versions[sess.id]++
	sess.version = r.versions[sess.id]
	r.lru.Remove(old.elem)
	sess.elem = r.lru.PushFront(sess)
	r.sessions[sess.id] = sess
	return old, nil, nil
}

// seedVersions raises the per-ID generation counters to at least the given
// values. The restart path seeds them from the store's manifest — including
// deleted IDs — so the first post-restart upload of any known ID continues
// its generation sequence instead of reusing one, which is what keeps
// result-cache keys and cluster span identities unambiguous across restarts.
func (r *registry) seedVersions(gens map[string]int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for id, gen := range gens {
		if gen > r.versions[id] {
			r.versions[id] = gen
		}
	}
}

// peek returns the session for id without refreshing its LRU recency —
// for pre-flight checks (ownership, quotas) that must not promote a corpus
// the caller may not even be allowed to touch.
func (r *registry) peek(id string) (*session, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	sess, ok := r.sessions[id]
	return sess, ok
}

// touch refreshes sess's LRU recency if it is still the installed session
// for its ID. Handlers look sessions up with peek and promote only after
// authorization succeeds, so a rejected request cannot perturb another
// tenant's eviction order.
func (r *registry) touch(sess *session) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.sessions[sess.id] == sess {
		r.lru.MoveToFront(sess.elem)
	}
}

// delete removes and returns the session for id (nil if absent); the
// caller releases its engine.
func (r *registry) delete(id string) *session {
	r.mu.Lock()
	defer r.mu.Unlock()
	sess, ok := r.sessions[id]
	if !ok {
		return nil
	}
	r.lru.Remove(sess.elem)
	delete(r.sessions, id)
	return sess
}

// deleteIf removes sess only if it is still the installed session for its
// ID — the rollback path after a failed persist, which must not stomp a
// newer session a concurrent upload installed meanwhile. Returns sess if
// removed, nil otherwise; the caller releases its engine either way.
func (r *registry) deleteIf(sess *session) *session {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.sessions[sess.id] != sess {
		return nil
	}
	r.lru.Remove(sess.elem)
	delete(r.sessions, sess.id)
	return sess
}

// list snapshots every live session's info, sorted by ID.
func (r *registry) list() []CorpusInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]CorpusInfo, 0, len(r.sessions))
	for _, sess := range r.sessions {
		out = append(out, sess.info())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// len returns the live session count.
func (r *registry) len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.sessions)
}

// clear drops and returns every session (graceful shutdown); the caller
// releases their engines.
func (r *registry) clear() []*session {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*session, 0, len(r.sessions))
	for _, sess := range r.sessions {
		out = append(out, sess)
	}
	r.sessions = make(map[string]*session)
	r.lru.Init()
	return out
}
