package server

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestLimiterFastPath(t *testing.T) {
	l := newLimiter(2, 0, time.Second)
	r1, ok := l.acquire(context.Background())
	if !ok {
		t.Fatal("first acquire shed")
	}
	r2, ok := l.acquire(context.Background())
	if !ok {
		t.Fatal("second acquire shed")
	}
	if _, ok := l.acquire(context.Background()); ok {
		t.Fatal("third acquire should shed with no queue")
	}
	r1()
	if r3, ok := l.acquire(context.Background()); !ok {
		t.Fatal("acquire after release shed")
	} else {
		r3()
	}
	r2()
}

func TestLimiterQueueWaits(t *testing.T) {
	l := newLimiter(1, 1, 5*time.Second)
	release, ok := l.acquire(context.Background())
	if !ok {
		t.Fatal("first acquire shed")
	}
	got := make(chan bool, 1)
	go func() {
		r, ok := l.acquire(context.Background())
		if ok {
			r()
		}
		got <- ok
	}()
	time.Sleep(20 * time.Millisecond) // the goroutine is queued
	release()
	select {
	case ok := <-got:
		if !ok {
			t.Fatal("queued acquire was shed despite the released slot")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("queued acquire never finished")
	}
}

func TestLimiterQueueOverflowSheds(t *testing.T) {
	l := newLimiter(1, 1, 5*time.Second)
	release, ok := l.acquire(context.Background())
	if !ok {
		t.Fatal("first acquire shed")
	}
	defer release()
	var queued sync.WaitGroup
	queued.Add(1)
	go func() {
		defer queued.Done()
		// Occupies the single queue spot until the timeout; we only need it
		// parked long enough for the overflow check below.
		ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
		defer cancel()
		_, _ = l.acquire(ctx)
	}()
	time.Sleep(20 * time.Millisecond)
	if _, ok := l.acquire(context.Background()); ok {
		t.Fatal("acquire beyond the queue bound was admitted")
	}
	queued.Wait()
}

func TestLimiterQueueTimeout(t *testing.T) {
	l := newLimiter(1, 1, 30*time.Millisecond)
	release, ok := l.acquire(context.Background())
	if !ok {
		t.Fatal("first acquire shed")
	}
	defer release()
	start := time.Now()
	if _, ok := l.acquire(context.Background()); ok {
		t.Fatal("queued acquire should time out")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("timeout shed took %v", elapsed)
	}
}

func TestLimiterContextCancel(t *testing.T) {
	l := newLimiter(1, 1, time.Hour)
	release, ok := l.acquire(context.Background())
	if !ok {
		t.Fatal("first acquire shed")
	}
	defer release()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	if _, ok := l.acquire(ctx); ok {
		t.Fatal("canceled waiter was admitted")
	}
}

func TestLimiterDisabled(t *testing.T) {
	var l *limiter // negative MaxConcurrent yields a nil limiter
	for i := 0; i < 100; i++ {
		release, ok := l.acquire(context.Background())
		if !ok {
			t.Fatal("disabled limiter shed")
		}
		release()
	}
}

// TestLimiterConcurrent hammers the limiter under -race and checks the
// concurrency invariant: admitted holders never exceed the slot count.
func TestLimiterConcurrent(t *testing.T) {
	const slots = 4
	l := newLimiter(slots, 8, 50*time.Millisecond)
	var inFlight, maxSeen atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 32; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				release, ok := l.acquire(context.Background())
				if !ok {
					continue
				}
				n := inFlight.Add(1)
				for {
					m := maxSeen.Load()
					if n <= m || maxSeen.CompareAndSwap(m, n) {
						break
					}
				}
				time.Sleep(time.Microsecond * 50)
				inFlight.Add(-1)
				release()
			}
		}()
	}
	wg.Wait()
	if maxSeen.Load() > slots {
		t.Fatalf("%d holders in flight, slot bound is %d", maxSeen.Load(), slots)
	}
}
