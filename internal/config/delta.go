package config

import (
	"bundling/internal/wtp"
)

// ApplyDelta derives a new session serving the mutated corpus from this one,
// without re-indexing: the matrix is patched copy-on-write (wtp.WithDelta),
// the striped shard rebuilds only the stripes holding mutated consumers, and
// the priced singleton prototypes are repaired for the mutated items only.
// Re-pricing a singleton re-runs the Sec. 4.2 price-search over the item's
// patched consumer vector — the per-item WTP histogram the search walks is
// derived from that vector, so the repair is exactly a histogram rebuild for
// the touched items. Every untouched prototype (vector, quote, mixed-bundling
// state) is shared read-only with the receiver.
//
// exec follows the NewSolverOn contract: nil selects the new local shard; a
// distributed caller passes the executor wired to the patched worker spans.
// The frequent-itemset transaction lists are not carried over — they are
// per-consumer views that a delta invalidates row-wise, and they re-mine
// lazily on the next FreqItemset solve, keeping ApplyDelta free of any
// O(entries) work.
//
// The receiver is untouched and keeps serving its own snapshot, so in-flight
// solves race with nothing: ApplyDelta only reads state that is immutable
// after NewSolver.
func (s *Solver) ApplyDelta(cells []wtp.Cell, exec StripeExecutor) (*Solver, error) {
	nw, err := s.w.WithDelta(cells)
	if err != nil {
		return nil, err
	}
	nsh, err := s.sh.ApplyDelta(nw, cells)
	if err != nil {
		return nil, err
	}
	ns := &Solver{
		w:      nw,
		sh:     nsh,
		exec:   exec,
		params: s.params,
		pr:     s.pr,
		k:      s.k,
	}
	if ns.exec == nil {
		ns.exec = localExec{nsh}
	}
	touched := make(map[int]bool, len(cells))
	for _, c := range cells {
		touched[c.Item] = true
	}
	ns.protos = make([]*node, len(s.protos))
	copy(ns.protos, s.protos)
	e := ns.newEngine()
	defer e.release()
	for i := range touched {
		ns.protos[i] = e.buildSingleton(e.ctx, i)
	}
	return ns, nil
}
