package config

import (
	"fmt"
	"sort"

	"bundling/internal/pricing"
)

// node is a bundle under construction inside the iterative algorithms. It
// caches the bundle's interested-consumer vector and pricing so merge
// evaluations do not rescan the WTP matrix for unchanged bundles.
//
// Under mixed bundling a node additionally carries per-consumer market
// state for its subtree of offers (the bundle itself plus every retained
// sub-bundle): pay[j] is consumer ids[j]'s total expected payment within
// the subtree, surp[j] the deterministic surplus of those purchases (the
// choice currency of the upgrade rule), cost[j] the expected variable cost
// of serving them and esur[j] the expected consumer surplus. Merge deltas
// are computed against this state — the paper's Table 6 accounting — which
// keeps every consumer counted exactly once and total revenue bounded by
// total willingness to pay.
type node struct {
	items []int     // ascending item ids
	ids   []int     // interested consumers, ascending
	vals  []float64 // bundle WTP per interested consumer (Eq. 1)
	quote pricing.Quote
	// uq is the standalone utility quote of a singleton prototype
	// (PriceUtility over the raw vector); the Components baseline reads it
	// directly, independent of the mixed-bundling state below.
	uq pricing.UtilityQuote
	// revenue, profit, surplus and util are the node subtree's expected
	// totals; util (= α·profit + (1-α)·surplus) is the currency every
	// merge gain is measured in. Under the paper's default objective
	// util == profit == revenue.
	revenue float64
	profit  float64
	surplus float64
	util    float64
	unitC   float64 // bundle unit cost (Σ item costs)
	// Mixed-bundling per-consumer state (nil under pure bundling):
	pay  []float64
	surp []float64
	cost []float64
	esur []float64
	// comps are the retained sub-bundles (mixed only), flattened over the
	// node's merge history; they form the X'_I output.
	comps []Bundle
	fresh bool // formed in the most recent iteration
	dead  bool // merged away (greedy bookkeeping)
}

// mergeScratch holds the reusable buffers one evaluation thread needs to
// price a candidate merge without allocating: the merged item list, the
// merged interested-consumer vector, and (mixed bundling) the combined
// per-consumer market state of the two parents. A node is materialized from
// the scratch only when the candidate survives the gain filter, so the
// O(N²) losing candidates cost zero heap churn.
type mergeScratch struct {
	items []int
	ids   []int
	vals  []float64
	pay   []float64
	surp  []float64
	cost  []float64
	esur  []float64
}

// grow returns buf resized to n, reusing capacity.
func grow(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

// objective assembles the pricing objective for a bundle: the configured
// profit weight α and the bundle's summed unit cost.
func (e *engine) objective(items []int) pricing.Objective {
	obj := pricing.Objective{ProfitWeight: e.params.ProfitWeight}
	if e.params.UnitCosts != nil {
		for _, i := range items {
			obj.UnitCost += e.params.UnitCosts[i]
		}
	}
	return obj
}

// initState populates a node's per-consumer market state from its
// standalone quote: each consumer's expected payment at the node's price,
// the deterministic surplus of buying it, and the cost/surplus expectations.
func (e *engine) initState(n *node) {
	n.pay = make([]float64, len(n.ids))
	n.surp = make([]float64, len(n.ids))
	n.cost = make([]float64, len(n.ids))
	n.esur = make([]float64, len(n.ids))
	model := e.params.Model
	alpha := model.Alpha()
	var pay, cost, sur float64
	for j, w := range n.vals {
		p := model.Probability(n.quote.Price, w)
		n.pay[j] = n.quote.Price * p
		n.cost[j] = n.unitC * p
		if s := alpha*w - n.quote.Price; s > 0 && p > 0 {
			n.surp[j] = s
			n.esur[j] = s * p
		}
		pay += n.pay[j]
		cost += n.cost[j]
		sur += n.esur[j]
	}
	n.revenue = pay
	n.profit = pay - cost
	n.surplus = sur
	n.util = e.params.ProfitWeight*n.profit + (1-e.params.ProfitWeight)*n.surplus
}

// mergeable applies the size cap and the paper's common-interest pruning.
// The pruning is valid only for θ ≤ 0: with independent or substitute
// items, no consumer interested in just one side ever yields extra bundle
// revenue; with complements (θ > 0) a bundle can profit even without a
// common consumer, so the filter is skipped.
func (e *engine) mergeable(a, b *node) bool {
	if len(a.items)+len(b.items) > e.k {
		return false
	}
	if e.params.Theta > 0 || e.params.DisablePruning {
		return true
	}
	return idsIntersect(a.ids, b.ids)
}

// vectorScale returns the factor that lifts a parent node's cached vals to
// the merged bundle's Eq. 1 terms. A multi-item parent's vector already
// carries the (1+θ) adjustment; a singleton's vector is raw (θ never
// applies to one item), so it picks the adjustment up here.
func (e *engine) vectorScale(n *node) float64 {
	if len(n.items) == 1 {
		return 1 + e.params.Theta
	}
	return 1
}

// evalMerge prices the merge of a and b and returns the candidate merged
// node along with the utility gain over keeping a and b as they are. The
// returned node is fully formed but not yet inserted anywhere. A nil node
// means the merge is infeasible or (unless keepAll) not gaining.
func (e *engine) evalMerge(a, b *node, keepAll bool) (*node, float64) {
	return e.evalMergeWith(e.ctx, a, b, keepAll)
}

// evalMergeWith is evalMerge with an explicit worker context, so concurrent
// evaluations each own their scratch (the shared Pricer is stateless). The
// candidate is priced entirely in scratch; a node is allocated only when it
// survives the gain filter (or keepAll is set, for the greedy run-to-end
// variant that needs non-gaining candidates too).
func (e *engine) evalMergeWith(ctx *workerCtx, a, b *node, keepAll bool) (*node, float64) {
	sc := ctx.sc
	sc.items = mergeItemsInto(sc.items, a.items, b.items)
	if e.incremental {
		sc.ids, sc.vals = e.exec.UnionVectors(e.reqCtx, a.ids, a.vals, e.vectorScale(a), b.ids, b.vals, e.vectorScale(b), sc.ids, sc.vals)
	} else {
		sc.ids, sc.vals = e.w.BundleVector(sc.items, e.params.Theta, sc.ids, sc.vals)
	}
	obj := e.objective(sc.items)
	switch e.params.Strategy {
	case Pure:
		uq := e.pr.PriceUtilityIn(ctx.psc, sc.vals, obj)
		gain := uq.Utility - a.util - b.util
		if !keepAll && gain <= minGain {
			return nil, gain
		}
		n := materialize(sc)
		n.quote = uq.Quote
		n.unitC = obj.UnitCost
		n.revenue, n.profit, n.surplus, n.util = uq.Revenue, uq.Profit, uq.Surplus, uq.Utility
		return n, gain
	default:
		return e.evalMergeMixed(ctx, obj.UnitCost, a, b)
	}
}

// materialize copies a surviving scratch candidate into a fresh node; the
// strategy-specific pricing state is filled in by the caller.
func materialize(sc *mergeScratch) *node {
	return &node{
		items: append([]int(nil), sc.items...),
		ids:   append([]int(nil), sc.ids...),
		vals:  append([]float64(nil), sc.vals...),
		fresh: true,
	}
}

// evalMergeMixed prices the new bundle against the combined current state
// of both subtrees (their offers are item-disjoint, so states add), within
// the paper's price window (max component price, sum of component prices).
// The combined state is built in one pass over the union ids directly from
// both parents' aligned vectors into the scratch buffers.
func (e *engine) evalMergeMixed(ctx *workerCtx, unitC float64, a, b *node) (*node, float64) {
	sc := ctx.sc
	m := len(sc.ids)
	sc.pay = grow(sc.pay, m)
	sc.surp = grow(sc.surp, m)
	sc.cost = grow(sc.cost, m)
	sc.esur = grow(sc.esur, m)
	ja, jb := 0, 0
	for j, id := range sc.ids {
		var p0, s0, c0, e0 float64
		if ja < len(a.ids) && a.ids[ja] == id {
			p0, s0, c0, e0 = a.pay[ja], a.surp[ja], a.cost[ja], a.esur[ja]
			ja++
		}
		if jb < len(b.ids) && b.ids[jb] == id {
			p0 += b.pay[jb]
			s0 += b.surp[jb]
			c0 += b.cost[jb]
			e0 += b.esur[jb]
			jb++
		}
		sc.pay[j], sc.surp[j], sc.cost[j], sc.esur[j] = p0, s0, c0, e0
	}
	lo := a.quote.Price
	if b.quote.Price > lo {
		lo = b.quote.Price
	}
	mq := e.pr.PriceMixedIn(ctx.psc, pricing.MixedOffer{
		CurPay:      sc.pay,
		CurSurplus:  sc.surp,
		CurCost:     sc.cost,
		CurESurplus: sc.esur,
		WB:          sc.vals,
		Lo:          lo,
		Hi:          a.quote.Price + b.quote.Price,
		BundleCost:  unitC,
		Obj:         pricing.Objective{ProfitWeight: e.params.ProfitWeight, UnitCost: unitC},
	})
	delta := mq.Utility - mq.BaselineUtility
	if !mq.Feasible || delta <= minGain {
		return nil, 0
	}
	// The candidate survives: materialize the node and commit the new
	// state, every consumer re-resolving at the chosen price.
	n := materialize(sc)
	n.unitC = unitC
	n.pay = make([]float64, m)
	n.surp = make([]float64, m)
	n.cost = make([]float64, m)
	n.esur = make([]float64, m)
	alpha := e.params.Model.Alpha()
	var pay, cost, sur float64
	for j := range n.ids {
		pj, prob, switched := e.pr.ResolveSwitch(n.vals[j], sc.pay[j], sc.surp[j], mq.Price)
		n.pay[j] = pj
		if switched {
			n.cost[j] = n.unitC * prob
			if s := alpha*n.vals[j] - mq.Price; s > 0 {
				n.surp[j] = s
				n.esur[j] = s * prob
			}
		} else {
			n.surp[j] = sc.surp[j]
			n.cost[j] = sc.cost[j]
			n.esur[j] = sc.esur[j]
		}
		pay += n.pay[j]
		cost += n.cost[j]
		sur += n.esur[j]
	}
	n.revenue = pay
	n.profit = pay - cost
	n.surplus = sur
	n.util = e.params.ProfitWeight*n.profit + (1-e.params.ProfitWeight)*n.surplus
	n.quote = pricing.Quote{Price: mq.Price, Revenue: mq.Revenue - mq.Baseline, Adopters: mq.Adopters}
	n.comps = append(n.comps, a.comps...)
	n.comps = append(n.comps, b.comps...)
	n.comps = append(n.comps, a.asBundle(), b.asBundle())
	return n, delta
}

// asBundle converts a node to its output Bundle form. For a mixed-bundling
// merge node, Revenue is the incremental revenue the bundle added over its
// components (the paper's "Add. revenue" column).
func (n *node) asBundle() Bundle {
	return Bundle{Items: append([]int(nil), n.items...), Price: n.quote.Price, Revenue: n.quote.Revenue}
}

// finish assembles the Configuration from surviving nodes.
func (e *engine) finish(nodes []*node, iterations int, trace []IterationStat) *Configuration {
	cfg := &Configuration{Strategy: e.params.Strategy, Iterations: iterations, Trace: trace}
	for _, n := range nodes {
		if n.dead {
			continue
		}
		cfg.Bundles = append(cfg.Bundles, n.asBundle())
		cfg.Components = append(cfg.Components, n.comps...)
		cfg.Revenue += n.revenue
		cfg.Profit += n.profit
		cfg.Surplus += n.surplus
		cfg.Utility += n.util
	}
	sort.Slice(cfg.Bundles, func(i, j int) bool { return cfg.Bundles[i].Items[0] < cfg.Bundles[j].Items[0] })
	return cfg
}

func errCostCount(got, want int) error {
	return fmt.Errorf("config: %d unit costs for %d items", got, want)
}

// mergeItemsInto unions two ascending item lists into dst, reusing its
// capacity.
func mergeItemsInto(dst, a, b []int) []int {
	out := dst[:0]
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// idsIntersect reports whether two ascending id lists share an element.
func idsIntersect(a, b []int) bool {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			return true
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return false
}

// alignVals scatters (srcIDs, srcVals) onto the consumer axis given by
// unionIDs (ascending, a superset of srcIDs), filling gaps with zero.
func alignVals(unionIDs, srcIDs []int, srcVals []float64) []float64 {
	out := make([]float64, len(unionIDs))
	j := 0
	for i, id := range unionIDs {
		if j < len(srcIDs) && srcIDs[j] == id {
			out[i] = srcVals[j]
			j++
		}
	}
	return out
}
