package wtp

import (
	"fmt"
	"math"
	"sort"
)

// This file implements delta upserts: batched single-cell mutations applied
// copy-on-write to an immutable base snapshot. WithDelta derives a new Matrix
// sharing every untouched row and posting list with its parent;
// Shard.ApplyDelta rebuilds only the stripes whose consumers are mutated; and
// SpanStore.ApplyDelta patches a worker's span replica in place of a full
// re-feed. All three produce state byte-identical in layout to a from-scratch
// rebuild of the mutated matrix, which is what the differential tests assert.

// Cell is one mutation of a delta upsert: set consumer Consumer's WTP for
// item Item to Value, or — when Delete is set — remove the cell outright.
// Within one delta, later cells override earlier ones for the same (consumer,
// item) coordinate.
type Cell struct {
	Consumer int     `json:"consumer"`
	Item     int     `json:"item"`
	Value    float64 `json:"value,omitempty"`
	Delete   bool    `json:"delete,omitempty"`
}

// checkCells validates every cell of a delta against an M×N matrix before
// anything is mutated, so a delta either applies whole or not at all.
func checkCells(cells []Cell, m, n int) error {
	for k, c := range cells {
		if c.Consumer < 0 || c.Consumer >= m || c.Item < 0 || c.Item >= n {
			return fmt.Errorf("wtp: delta cell %d refers to (%d,%d) outside %d×%d", k, c.Consumer, c.Item, m, n)
		}
		if c.Delete {
			if c.Value != 0 {
				return fmt.Errorf("wtp: delta cell %d deletes (%d,%d) but carries value %g", k, c.Consumer, c.Item, c.Value)
			}
			continue
		}
		if c.Value < 0 || math.IsNaN(c.Value) || math.IsInf(c.Value, 0) {
			return fmt.Errorf("wtp: delta cell %d value %g must be finite and non-negative", k, c.Value)
		}
	}
	return nil
}

// WithDelta returns a new matrix with the delta applied, leaving the receiver
// untouched. The result shares every unmodified row and posting list with the
// receiver (copy-on-write), so a one-cell delta costs O(row + posting list),
// not O(matrix). The version advances by exactly one per delta, regardless of
// cell count; an entirely no-op delta still bumps it, keeping the version a
// mutation counter rather than a content hash. The delta is validated up
// front and rejected whole on any bad cell.
func (w *Matrix) WithDelta(cells []Cell) (*Matrix, error) {
	if err := checkCells(cells, w.m, w.n); err != nil {
		return nil, err
	}
	nw := &Matrix{
		m:        w.m,
		n:        w.n,
		rows:     append([][]float64(nil), w.rows...),
		postings: append([][]Entry(nil), w.postings...),
		colSum:   append([]float64(nil), w.colSum...),
		total:    w.total,
		version:  w.version + 1,
		cow:      true,
	}
	for _, c := range cells {
		v := c.Value
		if c.Delete {
			v = 0
		}
		nw.put(c.Consumer, c.Item, v)
	}
	return nw, nil
}

// stripePatch is the per-stripe view of a delta: for each touched item, the
// final (consumer, value) assignments in ascending consumer order, with value
// 0 meaning the cell is deleted. Duplicate coordinates have already been
// collapsed last-wins.
type stripePatch map[int][]Entry

// deltaPatches groups a delta's cells by stripe index (consumer / stripeSize)
// after collapsing duplicate coordinates last-wins, producing per-stripe
// patches ready for patchStripe.
func deltaPatches(cells []Cell, stripeSize int) map[int]stripePatch {
	final := make(map[[2]int]float64, len(cells))
	for _, c := range cells {
		v := c.Value
		if c.Delete {
			v = 0
		}
		final[[2]int{c.Item, c.Consumer}] = v
	}
	out := make(map[int]stripePatch)
	for k, v := range final {
		s := k[1] / stripeSize
		p := out[s]
		if p == nil {
			p = make(stripePatch)
			out[s] = p
		}
		p[k[0]] = append(p[k[0]], Entry{Consumer: k[1], Value: v})
	}
	for _, p := range out {
		for i := range p {
			es := p[i]
			sort.Slice(es, func(a, b int) bool { return es[a].Consumer < es[b].Consumer })
		}
	}
	return out
}

// patchStripe merges one stripe's columnar postings with a patch, returning a
// freshly built stripe. Old and patch entries are both ascending per item, so
// each item segment is a two-pointer merge; a patch value of 0 removes the
// consumer from the segment. The layout matches a from-scratch Shard build
// exactly.
func patchStripe(st *Stripe, items int, patch stripePatch) Stripe {
	extra := 0
	for _, es := range patch {
		extra += len(es)
	}
	ns := Stripe{
		lo:   st.lo,
		hi:   st.hi,
		offs: make([]int32, items+1),
	}
	ids := make([]int32, 0, len(st.ids)+extra)
	vals := make([]float64, 0, len(st.vals)+extra)
	for i := 0; i < items; i++ {
		ns.offs[i] = int32(len(ids))
		oldIDs, oldVals := st.Item(i)
		p := patch[i]
		if len(p) == 0 {
			ids = append(ids, oldIDs...)
			vals = append(vals, oldVals...)
			continue
		}
		k, l := 0, 0
		for k < len(oldIDs) && l < len(p) {
			switch {
			case int(oldIDs[k]) < p[l].Consumer:
				ids = append(ids, oldIDs[k])
				vals = append(vals, oldVals[k])
				k++
			case int(oldIDs[k]) > p[l].Consumer:
				if p[l].Value > 0 {
					ids = append(ids, int32(p[l].Consumer))
					vals = append(vals, p[l].Value)
				}
				l++
			default:
				if p[l].Value > 0 {
					ids = append(ids, oldIDs[k])
					vals = append(vals, p[l].Value)
				}
				k++
				l++
			}
		}
		for ; k < len(oldIDs); k++ {
			ids = append(ids, oldIDs[k])
			vals = append(vals, oldVals[k])
		}
		for ; l < len(p); l++ {
			if p[l].Value > 0 {
				ids = append(ids, int32(p[l].Consumer))
				vals = append(vals, p[l].Value)
			}
		}
	}
	ns.offs[items] = int32(len(ids))
	ns.ids, ns.vals = ids, vals
	return ns
}

// ApplyDelta derives the shard of the mutated matrix from this shard,
// rebuilding only the stripes whose consumers appear in the delta and sharing
// every other stripe's columnar arrays with the receiver. The mutated matrix
// must come from WithDelta(cells) on this shard's matrix — the new shard
// snapshots its version. The receiver is untouched and stays valid for its
// own matrix.
func (sh *Shard) ApplyDelta(nw *Matrix, cells []Cell) (*Shard, error) {
	sh.check()
	if nw.m != sh.w.m || nw.n != sh.w.n {
		return nil, fmt.Errorf("wtp: delta shard rebase %d×%d onto %d×%d", nw.m, nw.n, sh.w.m, sh.w.n)
	}
	if err := checkCells(cells, nw.m, nw.n); err != nil {
		return nil, err
	}
	ns := &Shard{
		w:       nw,
		version: nw.version,
		size:    sh.size,
		stripes: append([]Stripe(nil), sh.stripes...),
	}
	for s, patch := range deltaPatches(cells, sh.size) {
		ns.stripes[s] = patchStripe(&sh.stripes[s], nw.n, patch)
	}
	return ns, nil
}

// ApplyDelta derives a patched span replica with the delta applied and the
// given snapshot version, sharing every untouched stripe with the receiver.
// Every cell must fall inside the span's consumer bounds — the coordinator
// cuts deltas per span before shipping them. The receiver is untouched, so
// in-flight requests against the old snapshot stay consistent.
func (sp *SpanStore) ApplyDelta(cells []Cell, version uint64) (*SpanStore, error) {
	if err := checkCells(cells, sp.consumers, sp.items); err != nil {
		return nil, err
	}
	lo, hi := sp.Bounds()
	for k, c := range cells {
		if c.Consumer < lo || c.Consumer >= hi {
			return nil, fmt.Errorf("wtp: delta cell %d consumer %d outside span [%d,%d)", k, c.Consumer, lo, hi)
		}
	}
	ns := &SpanStore{
		consumers:  sp.consumers,
		items:      sp.items,
		stripeSize: sp.stripeSize,
		version:    version,
		start:      sp.start,
		stripes:    append([]Stripe(nil), sp.stripes...),
	}
	for s, patch := range deltaPatches(cells, sp.stripeSize) {
		k := s - sp.start
		ns.stripes[k] = patchStripe(&sp.stripes[k], sp.items, patch)
	}
	return ns, nil
}
