package config

import (
	"fmt"
	"sort"
	"time"

	"bundling/internal/fim"
	"bundling/internal/pricing"
	"bundling/internal/wtp"
)

// defaultMaxItemsets caps mined maximal itemsets when the caller does not;
// a safety valve against dense transaction data blowing up the search.
const defaultMaxItemsets = 50000

// FreqItemsetOptions configures the frequent-itemset bundling baseline.
type FreqItemsetOptions struct {
	// MinSupport is the relative minimum support (fraction of consumers).
	// The paper found 0.1% to produce the highest revenue.
	MinSupport float64
	// MaxResults caps the number of mined maximal itemsets (0 = unlimited).
	MaxResults int
}

// DefaultFreqItemsetOptions returns the paper's tuned setting (Sec. 6.1.3).
func DefaultFreqItemsetOptions() FreqItemsetOptions {
	return FreqItemsetOptions{MinSupport: 0.001}
}

// FreqItemset runs the "Frequently Bought Together" baseline (Sec. 6.1.3):
// treat each consumer as a transaction of the items she has non-zero WTP
// for, mine maximal frequent itemsets (our MAFIA substitute), then greedily
// select the itemset with the highest absolute revenue gain over its
// components, discarding overlapping itemsets, until all items are covered;
// remaining items are sold individually. Individual items are admitted as
// candidates regardless of support, favoring the baseline as the paper does.
// Works for both pure and mixed bundling (params.Strategy).
func FreqItemset(w *wtp.Matrix, params Params, opts FreqItemsetOptions) (*Configuration, error) {
	e, err := newEngine(w, params)
	if err != nil {
		return nil, err
	}
	if opts.MinSupport < 0 || opts.MinSupport > 1 {
		return nil, fmt.Errorf("config: minimum support %g outside [0,1]", opts.MinSupport)
	}
	start := time.Now()
	// Transactions: items each consumer is interested in.
	txs := make([][]int, w.Consumers())
	for i := 0; i < w.Items(); i++ {
		for _, en := range w.Postings(i) {
			txs[en.Consumer] = append(txs[en.Consumer], i)
		}
	}
	minSup := int(opts.MinSupport * float64(w.Consumers()))
	if minSup < 2 {
		// An itemset bought by a single consumer is not "frequently bought
		// together"; the floor also keeps mining tractable on tiny corpora.
		minSup = 2
	}
	maxSize := 0
	if params.K != Unlimited {
		maxSize = params.K
	}
	maxResults := opts.MaxResults
	if maxResults == 0 {
		maxResults = defaultMaxItemsets
	}
	itemsets, err := fim.MineMaximal(w.Items(), txs, fim.Config{
		MinSupport: minSup,
		MaxSize:    maxSize,
		MaxResults: maxResults,
	})
	if err != nil {
		return nil, err
	}

	// Price singletons once; they are both the fallback offers and the
	// "components" that a candidate itemset must beat.
	singles := e.singletons()

	// Evaluate each multi-item candidate's absolute gain over components.
	type candidate struct {
		items []int
		node  *node
		gain  float64
	}
	var cands []candidate
	for _, is := range itemsets {
		if len(is.Items) < 2 {
			continue
		}
		n, gain := e.evalItemset(is.Items, singles)
		if n != nil && gain > minGain {
			cands = append(cands, candidate{items: is.Items, node: n, gain: gain})
		}
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].gain != cands[b].gain {
			return cands[a].gain > cands[b].gain
		}
		return len(cands[a].items) < len(cands[b].items)
	})
	covered := make([]bool, w.Items())
	var chosen []*node
	iterations := 0
	for _, c := range cands {
		overlap := false
		for _, i := range c.items {
			if covered[i] {
				overlap = true
				break
			}
		}
		if overlap {
			continue
		}
		for _, i := range c.items {
			covered[i] = true
		}
		chosen = append(chosen, c.node)
		iterations++
	}
	// Remaining items sold individually.
	for i, n := range singles {
		if !covered[i] {
			chosen = append(chosen, n)
		}
	}
	total := 0.0
	for _, n := range chosen {
		total += n.revenue
	}
	trace := []IterationStat{{Iteration: iterations, Revenue: total, Elapsed: time.Since(start), Bundles: len(chosen)}}
	return e.finish(chosen, iterations, trace), nil
}

// evalItemset prices a mined itemset as a bundle against its singleton
// components: standalone pricing for pure bundling, the incremental offer
// (bundle + all singletons at frozen prices) for mixed bundling. The
// returned gain is in seller-utility units, like every merge gain.
func (e *engine) evalItemset(items []int, singles []*node) (*node, float64) {
	n := &node{items: append([]int(nil), items...), fresh: true}
	sort.Ints(n.items)
	n.ids, n.vals = e.w.BundleVector(n.items, e.params.Theta, nil, nil)
	n.unitC = e.objective(n.items).UnitCost
	compUtil := 0.0
	for _, i := range items {
		compUtil += singles[i].util
	}
	switch e.params.Strategy {
	case Pure:
		uq := e.pr.PriceUtility(n.vals, e.objective(n.items))
		n.quote = uq.Quote
		n.revenue, n.profit, n.surplus, n.util = uq.Revenue, uq.Profit, uq.Surplus, uq.Utility
		return n, n.util - compUtil
	default: // Mixed
		// Combined current state of the singleton components (disjoint, so
		// payments and surpluses add), plus the paper's price window.
		curPay := make([]float64, len(n.ids))
		curSurp := make([]float64, len(n.ids))
		curCost := make([]float64, len(n.ids))
		curESur := make([]float64, len(n.ids))
		var lo, hi float64
		for _, i := range items {
			s := singles[i]
			p := alignVals(n.ids, s.ids, s.pay)
			q := alignVals(n.ids, s.ids, s.surp)
			c := alignVals(n.ids, s.ids, s.cost)
			es := alignVals(n.ids, s.ids, s.esur)
			for j := range curPay {
				curPay[j] += p[j]
				curSurp[j] += q[j]
				curCost[j] += c[j]
				curESur[j] += es[j]
			}
			if s.quote.Price > lo {
				lo = s.quote.Price
			}
			hi += s.quote.Price
		}
		mq := e.pr.PriceMixed(pricing.MixedOffer{
			CurPay: curPay, CurSurplus: curSurp, CurCost: curCost, CurESurplus: curESur,
			WB: n.vals, Lo: lo, Hi: hi, BundleCost: n.unitC,
			Obj: pricing.Objective{ProfitWeight: e.params.ProfitWeight, UnitCost: n.unitC},
		})
		delta := mq.Utility - mq.BaselineUtility
		if !mq.Feasible || delta <= minGain {
			return nil, 0
		}
		n.pay = make([]float64, len(n.ids))
		n.surp = make([]float64, len(n.ids))
		n.cost = make([]float64, len(n.ids))
		n.esur = make([]float64, len(n.ids))
		alpha := e.params.Model.Alpha()
		var pay, cost, sur float64
		for j := range n.ids {
			pj, prob, switched := e.pr.ResolveSwitch(n.vals[j], curPay[j], curSurp[j], mq.Price)
			n.pay[j] = pj
			if switched {
				n.cost[j] = n.unitC * prob
				if s := alpha*n.vals[j] - mq.Price; s > 0 {
					n.surp[j] = s
					n.esur[j] = s * prob
				}
			} else {
				n.surp[j] = curSurp[j]
				n.cost[j] = curCost[j]
				n.esur[j] = curESur[j]
			}
			pay += pj
			cost += n.cost[j]
			sur += n.esur[j]
		}
		n.revenue = pay
		n.profit = pay - cost
		n.surplus = sur
		n.util = e.params.ProfitWeight*n.profit + (1-e.params.ProfitWeight)*n.surplus
		n.quote = pricing.Quote{Price: mq.Price, Revenue: mq.Revenue - mq.Baseline, Adopters: mq.Adopters}
		for _, i := range items {
			n.comps = append(n.comps, singles[i].asBundle())
		}
		return n, delta
	}
}
