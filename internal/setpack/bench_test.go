package setpack

import (
	"math/rand"
	"testing"
)

func benchWeights(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	w := make([]float64, 1<<uint(n))
	for m := 1; m < len(w); m++ {
		w[m] = rng.Float64() * 50
	}
	return w
}

func BenchmarkExactDP12(b *testing.B) {
	w := benchWeights(12, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ExactDP(12, w); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExactDP16(b *testing.B) {
	w := benchWeights(16, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ExactDP(16, w); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExactBB12(b *testing.B) {
	w := benchWeights(12, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ExactBB(12, w); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGreedyRatio16(b *testing.B) {
	w := benchWeights(16, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := GreedyRatio(16, w); err != nil {
			b.Fatal(err)
		}
	}
}
