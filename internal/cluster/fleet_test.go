package cluster

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"bundling"
	"bundling/internal/server"
)

// TestFleetReportJoinsLiveState drives real traffic through a 2-worker
// cluster wired the way cmd/bundled wires it — raw transports wrapped in
// breakers then load recorders — and asserts GET /debug/fleet serves the
// joined view: both workers reachable with hot spans, and the coordinator's
// per-worker load and breaker columns filled in.
func TestFleetReportJoinsLiveState(t *testing.T) {
	workers := []*Worker{NewWorker(WorkerConfig{}), NewWorker(WorkerConfig{})}
	raw := []Transport{NewLocal(workers[0], "w0"), NewLocal(workers[1], "w1")}
	wrapped, breakers := WrapBreakers(raw, BreakerConfig{})
	transports, loads := WrapLoad(wrapped)

	w := testMatrix(t, 150, 12, 7)
	opts := bundling.Options{Theta: -0.1, StripeSize: 16}
	cs, err := NewSolver(w, opts, Config{Workers: transports})
	if err != nil {
		t.Fatal(err)
	}
	defer cs.Close()
	if _, err := cs.Solve(bundling.Matching()); err != nil {
		t.Fatal(err)
	}
	if _, err := cs.Evaluate(evalOffers()); err != nil {
		t.Fatal(err)
	}

	fl := NewFleet(FleetConfig{Probes: raw, Breakers: breakers, Loads: loads})
	srv := server.New(server.Config{Fleet: fl.Report})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	httpResp, err := http.Get(ts.URL + "/debug/fleet")
	if err != nil {
		t.Fatal(err)
	}
	defer httpResp.Body.Close()
	if httpResp.StatusCode != http.StatusOK {
		t.Fatalf("fleet: %d", httpResp.StatusCode)
	}
	var resp server.FleetResponse
	if err := json.NewDecoder(httpResp.Body).Decode(&resp); err != nil {
		t.Fatal(err)
	}

	if resp.Reachable != 2 || len(resp.Workers) != 2 {
		t.Fatalf("fleet: reachable=%d workers=%d", resp.Reachable, len(resp.Workers))
	}
	var spanRequests int64
	for i, wk := range resp.Workers {
		want := fmt.Sprintf("w%d", i)
		if wk.Addr != want || !wk.Reachable || wk.Status != "ok" {
			t.Fatalf("worker %d: %+v", i, wk)
		}
		if len(wk.Spans) == 0 {
			t.Errorf("worker %s: no spans", wk.Addr)
		}
		for _, sp := range wk.Spans {
			spanRequests += sp.Requests
			if sp.Corpus == "" || sp.Entries <= 0 {
				t.Errorf("worker %s: bad span %+v", wk.Addr, sp)
			}
		}
		if wk.Load == nil || wk.Load.RPCs == 0 {
			t.Errorf("worker %s: load not joined: %+v", wk.Addr, wk.Load)
		}
		if wk.Load != nil && wk.Load.Errors != 0 {
			t.Errorf("worker %s: unexpected errors: %+v", wk.Addr, wk.Load)
		}
		if wk.Breaker == nil || wk.Breaker.State != "closed" {
			t.Errorf("worker %s: breaker not joined: %+v", wk.Addr, wk.Breaker)
		}
	}
	if spanRequests == 0 {
		t.Error("no span saw any requests after solve+evaluate")
	}

	// The unreachable case: a fleet over a dead HTTP endpoint reports it
	// down without failing the whole view.
	dead := NewHTTP("127.0.0.1:1", nil)
	flDown := NewFleet(FleetConfig{Probes: []Transport{raw[0], dead}})
	down := flDown.Report(t.Context())
	if down.Reachable != 1 || len(down.Workers) != 2 {
		t.Fatalf("down fleet: %+v", down)
	}
	if down.Workers[1].Reachable || down.Workers[1].Error == "" {
		t.Fatalf("dead worker doc: %+v", down.Workers[1])
	}
}

// TestFleetMetricRows: the coordinator-side load state renders as bounded,
// name-major /metrics rows — one series per worker per family.
func TestFleetMetricRows(t *testing.T) {
	workers := []*Worker{NewWorker(WorkerConfig{}), NewWorker(WorkerConfig{})}
	raw := []Transport{NewLocal(workers[0], "w0"), NewLocal(workers[1], "w1")}
	transports, loads := WrapLoad(raw)
	w := testMatrix(t, 80, 10, 3)
	cs, err := NewSolver(w, bundling.Options{StripeSize: 16}, Config{Workers: transports})
	if err != nil {
		t.Fatal(err)
	}
	defer cs.Close()
	if _, err := cs.Solve(bundling.Greedy()); err != nil {
		t.Fatal(err)
	}

	fl := NewFleet(FleetConfig{Probes: raw, Loads: loads})
	gauges, counters := fl.MetricRows()
	if len(gauges) != 2 { // one EWMA gauge per worker
		t.Fatalf("gauges: %+v", gauges)
	}
	if len(counters) != 6 { // three counter families x two workers
		t.Fatalf("counters: %+v", counters)
	}
	// Name-major ordering: consecutive rows of a family share the name, so
	// the exposition writer emits one HELP/TYPE header per family.
	for i := 1; i < len(counters); i += 2 {
		if counters[i].Name != counters[i-1].Name {
			t.Fatalf("counter rows not grouped by name: %q then %q", counters[i-1].Name, counters[i].Name)
		}
	}
	for _, c := range counters {
		if c.Name == "bundled_worker_rpcs_total" && c.Value == 0 {
			t.Errorf("no RPCs recorded for %s", c.Labels)
		}
	}
}
