package bundling_test

import (
	"fmt"

	"bundling"
)

// The package-level example reproduces the paper's Table 1: two items
// priced individually versus as a pure bundle.
func Example() {
	w := bundling.NewMatrix(3, 2)
	w.MustSet(0, 0, 12)
	w.MustSet(0, 1, 4)
	w.MustSet(1, 0, 8)
	w.MustSet(1, 1, 2)
	w.MustSet(2, 0, 5)
	w.MustSet(2, 1, 11)

	components, _ := bundling.SolveComponents(w, bundling.Options{PriceLevels: 2000})
	bundle, _ := bundling.Configure(w, bundling.Options{Theta: -0.05, PriceLevels: 2000})
	fmt.Printf("components: $%.2f\n", components.Revenue)
	fmt.Printf("pure bundle: $%.2f\n", bundle.Revenue)
	// Output:
	// components: $27.00
	// pure bundle: $30.40
}

// ExampleFromRatings shows the paper's ratings→willingness-to-pay
// conversion (Sec. 6.1.1): a 5-star rating on a $10 book at λ = 1.25 means
// the rater would pay up to $12.50.
func ExampleFromRatings() {
	ratings := []bundling.Rating{
		{Consumer: 0, Item: 0, Stars: 5},
		{Consumer: 1, Item: 0, Stars: 4},
		{Consumer: 1, Item: 1, Stars: 2},
	}
	w, err := bundling.FromRatings(2, 2, ratings, []float64{10, 20}, 1.25)
	if err != nil {
		panic(err)
	}
	fmt.Printf("consumer 0 pays up to $%.2f for item 0\n", w.At(0, 0))
	fmt.Printf("consumer 1 pays up to $%.2f for item 1\n", w.At(1, 1))
	// Output:
	// consumer 0 pays up to $12.50 for item 0
	// consumer 1 pays up to $10.00 for item 1
}

// ExampleSolveOptimal2 solves 2-sized bundling exactly via maximum-weight
// graph matching (Sec. 5.1).
func ExampleSolveOptimal2() {
	// Two consumers with mirror-image tastes: a classic bundling win.
	w := bundling.NewMatrix(2, 2)
	w.MustSet(0, 0, 9)
	w.MustSet(0, 1, 1)
	w.MustSet(1, 0, 1)
	w.MustSet(1, 1, 9)

	separate, _ := bundling.SolveComponents(w, bundling.Options{PriceLevels: 1000})
	optimal, _ := bundling.SolveOptimal2(w, bundling.Options{PriceLevels: 1000})
	fmt.Printf("separate: $%.0f\n", separate.Revenue)
	fmt.Printf("bundled:  $%.0f (%d bundle)\n", optimal.Revenue, len(optimal.Bundles))
	// Output:
	// separate: $18
	// bundled:  $20 (1 bundle)
}

// ExampleOptions_mixed demonstrates mixed bundling: the bundle is offered
// alongside its components, capturing consumers the components miss.
func ExampleOptions_mixed() {
	// Three fans of each single item keep the component prices at $10;
	// one consumer values both items moderately ($7 each) and is priced
	// out of the components — only the $14 bundle reaches them.
	w := bundling.NewMatrix(7, 2)
	for u := 0; u < 3; u++ {
		w.MustSet(u, 0, 10)
		w.MustSet(u+3, 1, 10)
	}
	w.MustSet(6, 0, 7)
	w.MustSet(6, 1, 7)

	cfg, _ := bundling.Configure(w, bundling.Options{Strategy: bundling.Mixed, PriceLevels: 1000})
	fmt.Printf("offers: %d bundle + %d components\n", len(cfg.Bundles), len(cfg.Components))
	fmt.Printf("revenue: $%.0f\n", cfg.Revenue)
	// Output:
	// offers: 1 bundle + 2 components
	// revenue: $74
}

// ExampleNewReport renders a machine-readable summary of a configuration.
func ExampleNewReport() {
	w := bundling.NewMatrix(2, 2)
	w.MustSet(0, 0, 5)
	w.MustSet(1, 1, 5)
	cfg, _ := bundling.SolveComponents(w, bundling.Options{PriceLevels: 100})
	fmt.Println(bundling.NewReport(cfg, w))
	// Output:
	// pure bundling: 2 offers, expected revenue 10.00 (100.0% coverage)
}

// ExampleNewSolver shows the session API: one Solver indexes the matrix
// once and then serves every algorithm plus what-if evaluations — the way
// to run what-if traffic, where hundreds of scenarios price against the
// same corpus.
func ExampleNewSolver() {
	w := bundling.NewMatrix(3, 2)
	w.MustSet(0, 0, 12)
	w.MustSet(0, 1, 4)
	w.MustSet(1, 0, 8)
	w.MustSet(1, 1, 2)
	w.MustSet(2, 0, 5)
	w.MustSet(2, 1, 11)

	solver, err := bundling.NewSolver(w, bundling.Options{PriceLevels: 2000})
	if err != nil {
		panic(err)
	}
	for _, alg := range solver.Algorithms() {
		cfg, err := solver.Solve(alg)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-11s $%.2f\n", alg.Name(), cfg.Revenue)
	}
	whatIf, _ := solver.Evaluate([][]int{{0, 1}})
	fmt.Printf("%-11s $%.2f\n", "what-if", whatIf.Revenue)
	// Output:
	// components  $27.00
	// optimal2    $32.00
	// matching    $32.00
	// greedy      $32.00
	// freqitemset $32.00
	// what-if     $32.00
}

// ExampleEvaluate prices hand-designed lineups — the what-if counterpart
// of the search algorithms. The rotated-tastes market below is a case
// where no pairwise merge gains revenue, so the heuristics keep the items
// separate; what-if evaluation still reveals the grand bundle's value
// (every consumer's total WTP is $12, extractable with a single $12 tag).
func ExampleEvaluate() {
	w := bundling.NewMatrix(3, 3)
	w.MustSet(0, 0, 9)
	w.MustSet(0, 1, 3)
	w.MustSet(1, 1, 9)
	w.MustSet(1, 2, 3)
	w.MustSet(2, 0, 3)
	w.MustSet(2, 2, 9)

	opts := bundling.Options{PriceLevels: 1000}
	heuristic, _ := bundling.Configure(w, opts)
	grand, _ := bundling.Evaluate(w, [][]int{{0, 1, 2}}, opts)
	fmt.Printf("heuristic lineup: $%.0f\n", heuristic.Revenue)
	fmt.Printf("grand bundle:     $%.0f\n", grand.Revenue)
	// Output:
	// heuristic lineup: $27
	// grand bundle:     $36
}
