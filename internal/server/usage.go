package server

import (
	"context"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync/atomic"
	"time"

	"bundling/internal/usage"
)

// AnonTenant is the accounting key for unauthenticated traffic: with auth
// disabled every request shares the anonymous tenant "", which would render
// as an empty metric label, so the accountant files it under this name.
const AnonTenant = "anonymous"

// usageSet is the server's workload accountant: one bounded meter per
// dimension. Both share the same top-K and window configuration.
type usageSet struct {
	tenants *usage.Meter
	corpora *usage.Meter
}

// newUsageSet builds the accountant; nil when topK is negative (accounting
// disabled, /v1/usage absent).
func newUsageSet(topK int, window time.Duration) *usageSet {
	if topK < 0 {
		return nil
	}
	cfg := usage.Config{TopK: topK, Window: window}
	return &usageSet{tenants: usage.NewMeter(cfg), corpora: usage.NewMeter(cfg)}
}

// acctKey carries the request's mutable accounting record through the
// context, so handlers can contribute facts the middleware cannot see from
// the outside (the corpus ID inside an upload body, a cache hit).
type acctKey struct{}

type acctInfo struct {
	corpus   string
	cacheHit bool
}

// accountCorpus records the request's corpus ID for accounting — used by
// handleCreate, where the ID lives in the body rather than the path.
func accountCorpus(ctx context.Context, id string) {
	if info, _ := ctx.Value(acctKey{}).(*acctInfo); info != nil {
		info.corpus = id
	}
}

// accountCacheHit marks the request as served from the result cache.
func accountCacheHit(ctx context.Context, hit bool) {
	if info, _ := ctx.Value(acctKey{}).(*acctInfo); info != nil {
		info.cacheHit = hit
	}
}

// corpusFromPath extracts the corpus ID from a /v1/corpora/{id}[/op] path.
// The accounting middleware runs before mux routing, so PathValue is not
// populated yet; it takes the ESCAPED path (r.URL.EscapedPath()) and
// applies the mux's own decoding — split on literal '/', unescape the one
// segment — so an ID containing an encoded slash or a literal %XX run
// bills under exactly the key PathValue hands the handlers. Feeding it the
// already-decoded r.URL.Path would double-decode those IDs.
func corpusFromPath(escaped string) string {
	rest, ok := strings.CutPrefix(escaped, "/v1/corpora/")
	if !ok || rest == "" {
		return ""
	}
	if i := strings.IndexByte(rest, '/'); i >= 0 {
		rest = rest[:i]
	}
	if id, err := url.PathUnescape(rest); err == nil {
		return id
	}
	return rest
}

// countingBody counts the request-body bytes the handler actually read.
type countingBody struct {
	rc io.ReadCloser
	n  atomic.Int64
}

func (b *countingBody) Read(p []byte) (int, error) {
	n, err := b.rc.Read(p)
	b.n.Add(int64(n))
	return n, err
}

func (b *countingBody) Close() error { return b.rc.Close() }

// countingWriter captures the response status and body size for accounting.
type countingWriter struct {
	statusWriter
	n atomic.Int64
}

func (w *countingWriter) Write(b []byte) (int, error) {
	n, err := w.statusWriter.Write(b)
	w.n.Add(int64(n))
	return n, err
}

// account is the workload-accounting middleware, sitting between the
// tenancy guard (which resolved the tenant into the context) and the API
// mux. Every /v1 request that passed the guard is metered by tenant and —
// when one is addressed — by corpus: count, outcome, wall time, body bytes
// both ways, cache hits. Requests the guard rejected (401/429) never reach
// it; they have no tenant to bill.
func (s *Server) account(next http.Handler) http.Handler {
	if s.use == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !tracedPath(r.URL.Path) {
			next.ServeHTTP(w, r)
			return
		}
		start := time.Now()
		body := &countingBody{rc: r.Body}
		r.Body = body
		cw := &countingWriter{statusWriter: statusWriter{ResponseWriter: w}}
		info := &acctInfo{corpus: corpusFromPath(r.URL.EscapedPath())}
		r = r.WithContext(context.WithValue(r.Context(), acctKey{}, info))
		next.ServeHTTP(cw, r)
		sample := usage.Sample{
			Err:      cw.status() >= 400,
			Wall:     time.Since(start),
			BytesIn:  body.n.Load(),
			BytesOut: cw.n.Load(),
			CacheHit: info.cacheHit,
		}
		tenant := tenantOf(r)
		if tenant == "" {
			tenant = AnonTenant
		}
		s.use.tenants.Add(tenant, sample)
		if info.corpus != "" {
			s.use.corpora.Add(info.corpus, sample)
		}
	})
}

// corpusOwner resolves a corpus ID to its owning tenant, looking past the
// in-memory registry to evicted-but-persisted corpora. ok=false when the
// ID is unknown (e.g. metered traffic to a since-deleted corpus).
func (s *Server) corpusOwner(id string) (owner string, ok bool) {
	if sess, live := s.reg.peek(id); live {
		return sess.tenant, true
	}
	if s.cfg.Store != nil {
		if owner, _, _, live := s.cfg.Store.LiveInfo(id); live {
			return owner, true
		}
	}
	return "", false
}

// handleUsage serves the workload-accounting snapshot. An open daemon
// serves the admin view: every metered tenant and corpus. With auth
// enabled the view is tenant-scoped — the caller's own tenant row plus the
// corpora it may see (its own and public ones); the overflow bucket and
// unknown corpora stay admin-only, so one tenant cannot read another's
// traffic shape.
func (s *Server) handleUsage(w http.ResponseWriter, r *http.Request) {
	resp := UsageResponse{
		Scope:         "admin",
		WindowSeconds: s.use.tenants.Window().Seconds(),
		Tenants:       s.use.tenants.Snapshot(),
		Corpora:       s.use.corpora.Snapshot(),
	}
	if s.cfg.Auth.Enabled() {
		tenant := tenantOf(r)
		resp.Scope = "tenant"
		resp.Tenant = tenant
		scoped := resp.Tenants[:0]
		for _, row := range resp.Tenants {
			if row.Key == tenant {
				scoped = append(scoped, row)
			}
		}
		resp.Tenants = scoped
		visible := resp.Corpora[:0]
		for _, row := range resp.Corpora {
			if row.Key == usage.Other {
				continue
			}
			if owner, known := s.corpusOwner(row.Key); known && (owner == "" || owner == tenant) {
				visible = append(visible, row)
			}
		}
		resp.Corpora = visible
	}
	if resp.Tenants == nil {
		resp.Tenants = []UsageRow{}
	}
	if resp.Corpora == nil {
		resp.Corpora = []UsageRow{}
	}
	writeJSON(w, http.StatusOK, resp)
}

// usageMetricRows renders the accountant as labeled exposition rows —
// bundled_tenant_* and bundled_corpus_* families, at most top-K+1 series
// each, label values sanitized so a hostile ID cannot corrupt the scrape.
// The families are opt-in (Config.UsageMetrics): /metrics serves
// unauthenticated, and the label values name tenants and corpora — the
// very data the guard keeps /debug/traces and /v1/usage behind auth for —
// so by default the open endpoint stays label-free and the accountant is
// read through /v1/usage instead.
func (s *Server) usageMetricRows() ([]GaugeRow, []CounterRow) {
	if s.use == nil || !s.cfg.UsageMetrics {
		return nil, nil
	}
	var gauges []GaugeRow
	var counters []CounterRow
	for _, dim := range []struct {
		label string
		rows  []usage.Row
	}{
		{"tenant", s.use.tenants.Snapshot()},
		{"corpus", s.use.corpora.Snapshot()},
	} {
		prefix := "bundled_" + dim.label
		labels := make([]string, len(dim.rows))
		for i, row := range dim.rows {
			labels[i] = dim.label + `="` + usage.SanitizeLabel(row.Key) + `"`
		}
		counter := func(suffix, help string, val func(usage.Row) int64) {
			for i, row := range dim.rows {
				counters = append(counters, CounterRow{
					Name: prefix + suffix, Help: help, Labels: labels[i], Value: val(row),
				})
			}
		}
		counter("_requests_total", "Completed /v1 requests by "+dim.label+" (top-K, rest in \"other\").",
			func(r usage.Row) int64 { return r.Requests })
		counter("_errors_total", "Requests that ended in an error response, by "+dim.label+".",
			func(r usage.Row) int64 { return r.Errors })
		counter("_cache_hits_total", "Requests served from the result cache, by "+dim.label+".",
			func(r usage.Row) int64 { return r.CacheHits })
		counter("_bytes_in_total", "Request-body bytes read, by "+dim.label+".",
			func(r usage.Row) int64 { return r.BytesIn })
		counter("_bytes_out_total", "Response-body bytes written, by "+dim.label+".",
			func(r usage.Row) int64 { return r.BytesOut })
		for i, row := range dim.rows {
			gauges = append(gauges, GaugeRow{
				Name: prefix + "_wall_seconds", Help: "Cumulative request wall-clock seconds by " + dim.label + " (monotonically increasing).",
				Labels: labels[i], Value: row.WallSeconds,
			})
		}
		for i, row := range dim.rows {
			gauges = append(gauges, GaugeRow{
				Name: prefix + "_window_rps", Help: "Request rate over the accountant's sliding window, by " + dim.label + ".",
				Labels: labels[i], Value: row.RatePerSec,
			})
		}
	}
	return gauges, counters
}

// spanCorpusID maps a worker span key back to the corpus ID that fed it:
// the cluster coordinator keys spans as "<corpus>/<startStripe>" (see
// internal/cluster.NewSolver), so a trailing all-digit segment is
// stripped. A key without one is returned unchanged.
func spanCorpusID(key string) string {
	i := strings.LastIndexByte(key, '/')
	if i < 0 || i == len(key)-1 {
		return key
	}
	for _, r := range key[i+1:] {
		if r < '0' || r > '9' {
			return key
		}
	}
	return key[:i]
}

// handleFleet serves the merged fleet view the Config.Fleet hook assembles
// (installed by cmd/bundled in cluster mode; the route is absent
// otherwise). Like /v1/usage, the view is scoped: an open daemon serves
// the admin view, while an authenticated caller sees every worker's
// health, breaker and load state but only the span rows of corpora it may
// see (its own and public ones) — one tenant cannot read another's corpus
// IDs or per-span traffic. Spans of unknown corpora (deleted since being
// fed) stay admin-only.
func (s *Server) handleFleet(w http.ResponseWriter, r *http.Request) {
	resp := s.cfg.Fleet(r.Context())
	resp.Scope = "admin"
	if s.cfg.Auth.Enabled() {
		tenant := tenantOf(r)
		resp.Scope = "tenant"
		resp.Tenant = tenant
		for i := range resp.Workers {
			visible := resp.Workers[i].Spans[:0]
			for _, sp := range resp.Workers[i].Spans {
				if owner, known := s.corpusOwner(spanCorpusID(sp.Corpus)); known && (owner == "" || owner == tenant) {
					visible = append(visible, sp)
				}
			}
			resp.Workers[i].Spans = visible
		}
	}
	writeJSON(w, http.StatusOK, resp)
}
