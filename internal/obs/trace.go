// Package obs is the dependency-free observability core of the serving
// stack: request-scoped traces (a bounded in-memory span recorder carried
// on context.Context), a newest-first ring of recent traces behind
// /debug/traces, structured-logger construction for the daemons, and the
// runtime gauges exported alongside the Prometheus metrics.
//
// The design center is zero cost when tracing is off: StartSpan returns a
// nil *Span when the context carries no trace, and every *Span method is
// nil-safe, so instrumented code calls Tag/End unconditionally without
// guards and without allocations on the untraced path.
package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Correlation headers. The server stamps HeaderRequest on every response;
// HeaderTrace/HeaderSpan carry the active trace across coordinator→worker
// RPC hops (and are echoed back to API callers on traced responses).
const (
	HeaderRequest = "X-Request-Id"
	HeaderTrace   = "X-Trace-Id"
	HeaderSpan    = "X-Span-Id"
)

// DefaultMaxSpans bounds how many spans one trace records. A cluster solve
// can issue thousands of per-worker RPCs; past the cap spans still time and
// still feed the stage histograms via the OnSpanEnd hook, but their records
// are dropped (counted in TraceDoc.Dropped) instead of growing the trace.
const DefaultMaxSpans = 512

// NewID returns a fresh 16-hex-char random identifier, used for both trace
// IDs and request IDs.
func NewID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing means the platform is broken; fall back to
		// a best-effort unique value rather than panicking in serving code.
		return fmt.Sprintf("%016x", time.Now().UnixNano())
	}
	return hex.EncodeToString(b[:])
}

// Tag is one key/value annotation on a span.
type Tag struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// SpanDoc is the JSON form of one finished span. Times are offsets from
// the trace start so a reader can reconstruct the timeline without clock
// math; IDs are sequential within the trace (1 = root, Parent 0 = none).
type SpanDoc struct {
	ID      int64   `json:"id"`
	Parent  int64   `json:"parent"`
	Name    string  `json:"name"`
	StartMS float64 `json:"start_ms"`
	DurMS   float64 `json:"dur_ms"`
	Tags    []Tag   `json:"tags,omitempty"`
}

// TraceDoc is the JSON form of one finished trace, as served by
// /debug/traces (newest first).
type TraceDoc struct {
	TraceID string    `json:"trace_id"`
	Start   time.Time `json:"start"`
	DurMS   float64   `json:"dur_ms"`
	Dropped int       `json:"dropped_spans,omitempty"`
	Spans   []SpanDoc `json:"spans"`
}

// RootTag returns the value of the named tag on the root span ("" if
// absent) — the root span carries the request-level annotations (tenant,
// corpus, algorithm, status).
func (d *TraceDoc) RootTag(key string) string {
	for _, sp := range d.Spans {
		if sp.ID != 1 {
			continue
		}
		for _, t := range sp.Tags {
			if t.Key == key {
				return t.Value
			}
		}
		return ""
	}
	return ""
}

// Tree renders the span tree as indented text lines (one per span, children
// under parents, siblings in start order) — the form dumped to the log for
// over-budget requests.
func (d *TraceDoc) Tree() string {
	children := make(map[int64][]SpanDoc, len(d.Spans))
	for _, sp := range d.Spans {
		children[sp.Parent] = append(children[sp.Parent], sp)
	}
	for _, kids := range children {
		sort.Slice(kids, func(i, j int) bool { return kids[i].StartMS < kids[j].StartMS })
	}
	var b strings.Builder
	var walk func(parent int64, depth int)
	walk = func(parent int64, depth int) {
		for _, sp := range children[parent] {
			b.WriteString(strings.Repeat("  ", depth))
			fmt.Fprintf(&b, "%s %.2fms", sp.Name, sp.DurMS)
			for _, t := range sp.Tags {
				fmt.Fprintf(&b, " %s=%s", t.Key, t.Value)
			}
			b.WriteByte('\n')
			walk(sp.ID, depth+1)
		}
	}
	walk(0, 0)
	if d.Dropped > 0 {
		fmt.Fprintf(&b, "(+%d spans dropped)\n", d.Dropped)
	}
	return b.String()
}

// Trace is one request's span recorder. It is safe for concurrent use by
// the fan-out goroutines of a single request; construct with NewTrace.
type Trace struct {
	// ID is the trace identifier carried in X-Trace-Id.
	ID string

	start  time.Time
	max    int
	onEnd  func(name string, d time.Duration)
	nextID atomic.Int64

	mu      sync.Mutex
	spans   []SpanDoc
	dropped int
}

// NewTrace starts a trace. id "" allocates a fresh one; maxSpans <= 0
// selects DefaultMaxSpans.
func NewTrace(id string, maxSpans int) *Trace {
	if id == "" {
		id = NewID()
	}
	if maxSpans <= 0 {
		maxSpans = DefaultMaxSpans
	}
	return &Trace{ID: id, start: time.Now(), max: maxSpans}
}

// OnSpanEnd installs a hook called with every span's name and duration as
// it ends — even spans past the record cap — so per-stage histograms see
// the full population. Must be set before spans start; the hook must be
// safe for concurrent calls.
func (t *Trace) OnSpanEnd(fn func(name string, d time.Duration)) { t.onEnd = fn }

// Finish snapshots the trace into its JSON document. Spans still open at
// finish time are not included.
func (t *Trace) Finish() TraceDoc {
	t.mu.Lock()
	defer t.mu.Unlock()
	doc := TraceDoc{
		TraceID: t.ID,
		Start:   t.start,
		DurMS:   float64(time.Since(t.start)) / float64(time.Millisecond),
		Dropped: t.dropped,
		Spans:   make([]SpanDoc, len(t.spans)),
	}
	copy(doc.Spans, t.spans)
	sort.Slice(doc.Spans, func(i, j int) bool { return doc.Spans[i].ID < doc.Spans[j].ID })
	return doc
}

// Span is one in-flight timed region. The nil *Span is a valid no-op span
// (returned by StartSpan when the context carries no trace), so callers
// never guard Tag/End.
type Span struct {
	tr     *Trace
	id     int64
	parent int64
	name   string
	start  time.Time
	tags   []Tag
}

// Tag annotates the span. Values are rendered with fmt.Sprint at call time
// only for non-string types.
func (s *Span) Tag(key string, value any) {
	if s == nil {
		return
	}
	str, ok := value.(string)
	if !ok {
		str = fmt.Sprint(value)
	}
	s.tags = append(s.tags, Tag{Key: key, Value: str})
}

// End closes the span, recording it on its trace (or only feeding the
// OnSpanEnd hook if the trace is at its span cap). End is not idempotent;
// call it exactly once, typically via defer.
func (s *Span) End() {
	if s == nil {
		return
	}
	d := time.Since(s.start)
	t := s.tr
	if t.onEnd != nil {
		t.onEnd(s.name, d)
	}
	t.mu.Lock()
	if len(t.spans) < t.max {
		t.spans = append(t.spans, SpanDoc{
			ID:      s.id,
			Parent:  s.parent,
			Name:    s.name,
			StartMS: float64(s.start.Sub(t.start)) / float64(time.Millisecond),
			DurMS:   float64(d) / float64(time.Millisecond),
			Tags:    s.tags,
		})
	} else {
		t.dropped++
	}
	t.mu.Unlock()
}

type traceKey struct{}
type spanKey struct{}

// ContextWithTrace attaches a trace to the context; spans started from the
// returned context (and its descendants) record into it.
func ContextWithTrace(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, traceKey{}, t)
}

// TraceFrom returns the context's trace, or nil.
func TraceFrom(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}

// StartSpan opens a child span of the context's current span (the root
// span if none). When the context carries no trace it returns the context
// unchanged and a nil span, making the whole call chain a no-op.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	t := TraceFrom(ctx)
	if t == nil {
		return ctx, nil
	}
	var parent int64
	if ps, _ := ctx.Value(spanKey{}).(*Span); ps != nil {
		parent = ps.id
	}
	sp := &Span{tr: t, id: t.nextID.Add(1), parent: parent, name: name, start: time.Now()}
	return context.WithValue(ctx, spanKey{}, sp), sp
}

// Annotate tags the context's current span; a no-op without one. Handlers
// use it to hang request-level fields (corpus, algorithm, tenant) on the
// root span for the request log line.
func Annotate(ctx context.Context, key string, value any) {
	if sp, _ := ctx.Value(spanKey{}).(*Span); sp != nil {
		sp.Tag(key, value)
	}
}

// Inject stamps the context's trace ID and current span ID onto outgoing
// request headers; a no-op without a trace.
func Inject(ctx context.Context, h http.Header) {
	t := TraceFrom(ctx)
	if t == nil {
		return
	}
	h.Set(HeaderTrace, t.ID)
	if sp, _ := ctx.Value(spanKey{}).(*Span); sp != nil {
		h.Set(HeaderSpan, strconv.FormatInt(sp.id, 10))
	}
}

// Extract reads the correlation headers from an incoming request: the
// caller's trace ID ("" if untraced) and its current span ID (0 if absent
// or malformed).
func Extract(h http.Header) (traceID string, spanID int64) {
	traceID = h.Get(HeaderTrace)
	if traceID == "" {
		return "", 0
	}
	spanID, _ = strconv.ParseInt(h.Get(HeaderSpan), 10, 64)
	return traceID, spanID
}

// RemoteSpan builds a single-span TraceDoc under a caller-supplied trace
// ID — how a worker records its side of a coordinator RPC so /debug/traces
// on the worker can be joined with the coordinator's trace.
func RemoteSpan(traceID string, parentSpan int64, name string, start time.Time, d time.Duration, tags ...Tag) TraceDoc {
	return TraceDoc{
		TraceID: traceID,
		Start:   start,
		DurMS:   float64(d) / float64(time.Millisecond),
		Spans: []SpanDoc{{
			ID:     1,
			Parent: parentSpan,
			Name:   name,
			DurMS:  float64(d) / float64(time.Millisecond),
			Tags:   tags,
		}},
	}
}
