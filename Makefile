# Developer entry points. CI runs `make check`; `make bench` refreshes the
# machine-readable perf trajectory in BENCH_greedy.json so performance PRs
# have a baseline to regress against.

GO ?= go

.PHONY: build test vet race check bench fuzz

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-check the packages with lock-free parallel paths (chunked evalPairs).
race:
	$(GO) test -race ./internal/config/ ./internal/pricing/ ./internal/wtp/

check: vet build test race

# Benchmark the greedy/matching hot paths at bench scale and write
# machine-readable results. Compare against the committed BENCH_greedy.json
# before and after performance work.
bench:
	$(GO) run ./cmd/bundlebench -exp perf -benchout BENCH_greedy.json

# Short fuzz pass over the incremental-union equivalence property.
fuzz:
	$(GO) test ./internal/wtp -fuzz FuzzUnionVectors -fuzztime 30s -run '^$$'
