package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"bundling"
)

func TestRunDemoText(t *testing.T) {
	var buf bytes.Buffer
	if err := run("", true, "mixed", "matching", 0, 0, 1.25, 0, "text", &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "mixed bundling") || !strings.Contains(out, "expected revenue") {
		t.Errorf("text output:\n%s", out)
	}
}

func TestRunDemoJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := run("", true, "pure", "greedy", 0.05, 4, 1.25, 0, "json", &buf); err != nil {
		t.Fatal(err)
	}
	var r bundling.Report
	if err := json.Unmarshal(buf.Bytes(), &r); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if r.Strategy != "pure" || r.Revenue <= 0 {
		t.Errorf("report: %+v", r)
	}
	for _, off := range r.Offers {
		if len(off.Items) > 4 {
			t.Errorf("offer %v exceeds k=4", off.Items)
		}
	}
}

func TestRunFromCSVFile(t *testing.T) {
	ds, err := bundling.GenerateDataset(bundling.DatasetConfig{
		Users: 100, Items: 25, RatingsPerUser: 10, MinDegree: 3, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "ratings.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.WriteCSV(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	var buf bytes.Buffer
	if err := run(path, false, "pure", "components", 0, 0, 1.25, 0, "text", &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "pure bundling") {
		t.Errorf("output:\n%s", buf.String())
	}
}

func TestRunFromJSONFile(t *testing.T) {
	w := bundling.NewMatrix(3, 2)
	w.MustSet(0, 0, 12)
	w.MustSet(1, 0, 8)
	w.MustSet(1, 1, 8)
	w.MustSet(2, 1, 10)
	doc, err := json.Marshal(bundling.NewMatrixDoc(w))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "corpus.json")
	if err := os.WriteFile(path, doc, 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := run(path, false, "pure", "matching", 0, 0, 1.25, 0, "json", &buf); err != nil {
		t.Fatal(err)
	}
	var r bundling.Report
	if err := json.Unmarshal(buf.Bytes(), &r); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if r.Revenue <= 0 {
		t.Errorf("report: %+v", r)
	}
}

// TestRunMalformedInput locks in error-not-panic behavior on corrupt files.
// The huge-id rows used to crash with a makeslice panic when the decoder
// tried to allocate a dense matrix sized by the bogus id.
func TestRunMalformedInput(t *testing.T) {
	cases := []struct {
		name, content string
	}{
		{"huge user id.csv", "price,0,5\nrating,9000000000000000000,0,5\n"},
		{"huge item id.csv", "price,5000000000,1\n"},
		{"missing price.csv", "rating,0,0,5\n"},
		{"bad stars.csv", "price,0,5\nrating,0,0,9\n"},
		{"unknown kind.csv", "cost,0,5\n"},
		{"bad csv quote.csv", "\"unterminated\nprice,0,5\n"},
		{"negative price.csv", "price,0,-3\n"},
		{"bad json.json", "{\"consumers\": 2"},
		{"json huge dims.json", `{"consumers": 4000000000, "items": 4000000000, "entries": []}`},
		{"json entry out of range.json", `{"consumers": 2, "items": 2, "entries": [[5, 0, 1]]}`},
		{"json fractional id.json", `{"consumers": 2, "items": 2, "entries": [[0.5, 0, 1]]}`},
		{"json negative wtp.json", `{"consumers": 2, "items": 2, "entries": [[0, 0, -1]]}`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), strings.ReplaceAll(c.name, " ", "_"))
			if err := os.WriteFile(path, []byte(c.content), 0o644); err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			err := run(path, false, "pure", "matching", 0, 0, 1.25, 0, "text", &buf)
			if err == nil {
				t.Fatalf("expected error for %s", c.name)
			}
		})
	}
}

func TestRunErrors(t *testing.T) {
	var buf bytes.Buffer
	cases := []struct {
		name string
		err  func() error
	}{
		{"no input", func() error { return run("", false, "pure", "matching", 0, 0, 1.25, 0, "text", &buf) }},
		{"missing file", func() error { return run("/no/such/file.csv", false, "pure", "matching", 0, 0, 1.25, 0, "text", &buf) }},
		{"bad strategy", func() error { return run("", true, "hybrid", "matching", 0, 0, 1.25, 0, "text", &buf) }},
		{"bad algo", func() error { return run("", true, "pure", "quantum", 0, 0, 1.25, 0, "text", &buf) }},
		{"bad format", func() error { return run("", true, "pure", "matching", 0, 0, 1.25, 0, "xml", &buf) }},
		{"bad lambda", func() error { return run("", true, "pure", "matching", 0, 0, 0.5, 0, "text", &buf) }},
		{"bad theta", func() error { return run("", true, "pure", "matching", -2, 0, 1.25, 0, "text", &buf) }},
	}
	for _, c := range cases {
		if c.err() == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}
