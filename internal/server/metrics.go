package server

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// latencyBuckets are the cumulative histogram upper bounds (seconds) of the
// request-duration metrics, exponential from 1ms to 10s.
var latencyBuckets = []float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

// histogram is a fixed-bucket cumulative latency histogram, safe for
// concurrent observation.
type histogram struct {
	counts  []atomic.Int64 // one per bucket, plus a final +Inf slot
	sumNano atomic.Int64
	total   atomic.Int64
}

func newHistogram() *histogram {
	return &histogram{counts: make([]atomic.Int64, len(latencyBuckets)+1)}
}

// observe records one request duration.
func (h *histogram) observe(d time.Duration) {
	s := d.Seconds()
	i := sort.SearchFloat64s(latencyBuckets, s)
	h.counts[i].Add(1)
	h.sumNano.Add(int64(d))
	h.total.Add(1)
}

// metrics aggregates the server's operational counters. All fields are
// atomics; rendering takes a consistent-enough snapshot for monitoring.
type metrics struct {
	start time.Time

	requests sync.Map // op string → *atomic.Int64
	errors   atomic.Int64

	cacheHits   atomic.Int64
	cacheMisses atomic.Int64

	batches          atomic.Int64 // batched passes processed
	batchedRequests  atomic.Int64 // evaluate requests that went through a batch
	coalescedInBatch atomic.Int64 // requests that shared another request's execution

	uploads   atomic.Int64
	evictions atomic.Int64

	latency sync.Map // op string → *histogram
}

func newMetrics() *metrics { return &metrics{start: time.Now()} }

// opCounter returns the request counter for op, creating it on first use.
func (m *metrics) opCounter(op string) *atomic.Int64 {
	if c, ok := m.requests.Load(op); ok {
		return c.(*atomic.Int64)
	}
	c, _ := m.requests.LoadOrStore(op, new(atomic.Int64))
	return c.(*atomic.Int64)
}

// observe records one completed request of the given op.
func (m *metrics) observe(op string, d time.Duration) {
	m.opCounter(op).Add(1)
	h, ok := m.latency.Load(op)
	if !ok {
		h, _ = m.latency.LoadOrStore(op, newHistogram())
	}
	h.(*histogram).observe(d)
}

// render writes the Prometheus text exposition of every metric.
func (m *metrics) render(w io.Writer, sessions, cacheEntries int) {
	fmt.Fprintf(w, "# HELP bundled_uptime_seconds Seconds since the server started.\n")
	fmt.Fprintf(w, "# TYPE bundled_uptime_seconds gauge\n")
	fmt.Fprintf(w, "bundled_uptime_seconds %g\n", time.Since(m.start).Seconds())
	fmt.Fprintf(w, "# HELP bundled_sessions Live corpus sessions in the registry.\n")
	fmt.Fprintf(w, "# TYPE bundled_sessions gauge\n")
	fmt.Fprintf(w, "bundled_sessions %d\n", sessions)
	fmt.Fprintf(w, "# HELP bundled_result_cache_entries Entries in the result cache.\n")
	fmt.Fprintf(w, "# TYPE bundled_result_cache_entries gauge\n")
	fmt.Fprintf(w, "bundled_result_cache_entries %d\n", cacheEntries)

	fmt.Fprintf(w, "# HELP bundled_requests_total Completed requests by operation.\n")
	fmt.Fprintf(w, "# TYPE bundled_requests_total counter\n")
	for _, op := range m.ops(&m.requests) {
		c, _ := m.requests.Load(op)
		fmt.Fprintf(w, "bundled_requests_total{op=%q} %d\n", op, c.(*atomic.Int64).Load())
	}
	simple := []struct {
		name, help string
		v          *atomic.Int64
	}{
		{"bundled_errors_total", "Requests that ended in an error response.", &m.errors},
		{"bundled_cache_hits_total", "Result-cache hits.", &m.cacheHits},
		{"bundled_cache_misses_total", "Result-cache misses.", &m.cacheMisses},
		{"bundled_batches_total", "Micro-batch passes processed.", &m.batches},
		{"bundled_batched_requests_total", "Evaluate requests drained through micro-batches.", &m.batchedRequests},
		{"bundled_coalesced_requests_total", "Evaluate requests that shared an identical concurrent request's execution.", &m.coalescedInBatch},
		{"bundled_uploads_total", "Corpus uploads (session creations and replacements).", &m.uploads},
		{"bundled_session_evictions_total", "Sessions evicted by the registry's LRU bound.", &m.evictions},
	}
	for _, s := range simple {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", s.name, s.help, s.name, s.name, s.v.Load())
	}

	fmt.Fprintf(w, "# HELP bundled_request_duration_seconds Request latency by operation.\n")
	fmt.Fprintf(w, "# TYPE bundled_request_duration_seconds histogram\n")
	for _, op := range m.ops(&m.latency) {
		hv, _ := m.latency.Load(op)
		h := hv.(*histogram)
		var cum int64
		for i, le := range latencyBuckets {
			cum += h.counts[i].Load()
			fmt.Fprintf(w, "bundled_request_duration_seconds_bucket{op=%q,le=%q} %d\n", op, trimFloat(le), cum)
		}
		cum += h.counts[len(latencyBuckets)].Load()
		fmt.Fprintf(w, "bundled_request_duration_seconds_bucket{op=%q,le=\"+Inf\"} %d\n", op, cum)
		fmt.Fprintf(w, "bundled_request_duration_seconds_sum{op=%q} %g\n", op, time.Duration(h.sumNano.Load()).Seconds())
		fmt.Fprintf(w, "bundled_request_duration_seconds_count{op=%q} %d\n", op, h.total.Load())
	}
}

// ops returns a sync.Map's string keys sorted, for stable rendering.
func (m *metrics) ops(sm *sync.Map) []string {
	var out []string
	sm.Range(func(k, _ any) bool { out = append(out, k.(string)); return true })
	sort.Strings(out)
	return out
}

// trimFloat renders a bucket bound the way Prometheus clients do.
func trimFloat(f float64) string { return fmt.Sprintf("%g", f) }
