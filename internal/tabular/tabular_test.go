package tabular

import (
	"strings"
	"testing"
)

func TestRenderAlignment(t *testing.T) {
	tbl := New("Title", "a", "bbbb")
	tbl.AddRow("xx", "y")
	tbl.AddRow("z")
	out := tbl.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // title + header + separator + 2 rows = 5? title(1)+header(1)+sep(1)+rows(2)=5
		if len(lines) != 5 {
			t.Fatalf("got %d lines:\n%s", len(lines), out)
		}
	}
	if lines[0] != "Title" {
		t.Errorf("first line = %q, want title", lines[0])
	}
	if !strings.Contains(lines[1], "a") || !strings.Contains(lines[1], "bbbb") {
		t.Errorf("header line = %q", lines[1])
	}
	if !strings.Contains(lines[2], "--") {
		t.Errorf("separator line = %q", lines[2])
	}
	// All data lines padded to equal width.
	if len(lines[3]) != len(lines[4]) {
		t.Errorf("rows unaligned: %q vs %q", lines[3], lines[4])
	}
}

func TestAddRowDropsExtraCells(t *testing.T) {
	tbl := New("", "only")
	tbl.AddRow("a", "extra", "more")
	out := tbl.String()
	if strings.Contains(out, "extra") {
		t.Errorf("extra cell should be dropped:\n%s", out)
	}
}

func TestAddRowf(t *testing.T) {
	tbl := New("", "n", "f", "s")
	tbl.AddRowf(3, 1.23456, "txt")
	out := tbl.String()
	if !strings.Contains(out, "3") || !strings.Contains(out, "1.23") || !strings.Contains(out, "txt") {
		t.Errorf("AddRowf output:\n%s", out)
	}
	if strings.Contains(out, "1.23456") {
		t.Errorf("floats should be rounded to 2 decimals:\n%s", out)
	}
}

func TestNoTitle(t *testing.T) {
	tbl := New("", "h")
	tbl.AddRow("v")
	out := tbl.String()
	if strings.HasPrefix(out, "\n") {
		t.Errorf("no blank first line expected:\n%q", out)
	}
	if !strings.HasPrefix(out, "h") {
		t.Errorf("should start with header:\n%q", out)
	}
}

func TestWideCellGrowsColumn(t *testing.T) {
	tbl := New("", "h", "x")
	tbl.AddRow("short", "1")
	tbl.AddRow("a-much-longer-cell", "2")
	lines := strings.Split(strings.TrimRight(tbl.String(), "\n"), "\n")
	for i := 1; i < len(lines); i++ {
		if len(lines[i]) != len(lines[0]) {
			t.Errorf("line %d width %d != header width %d", i, len(lines[i]), len(lines[0]))
		}
	}
}
