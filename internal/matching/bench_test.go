package matching

import (
	"math/rand"
	"testing"
)

func randomGraph(n int, degree int, seed int64) []Edge {
	rng := rand.New(rand.NewSource(seed))
	var edges []Edge
	for u := 0; u < n; u++ {
		for k := 0; k < degree; k++ {
			v := rng.Intn(n)
			if v != u {
				edges = append(edges, Edge{u, v, rng.Float64() * 100})
			}
		}
	}
	return edges
}

func benchMatching(b *testing.B, n, degree int) {
	edges := randomGraph(n, degree, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MaxWeight(n, edges); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMaxWeight100Sparse(b *testing.B)  { benchMatching(b, 100, 4) }
func BenchmarkMaxWeight500Sparse(b *testing.B)  { benchMatching(b, 500, 4) }
func BenchmarkMaxWeight100Dense(b *testing.B)   { benchMatching(b, 100, 30) }
func BenchmarkMaxWeight1000Sparse(b *testing.B) { benchMatching(b, 1000, 3) }
