package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"bundling"
	"bundling/internal/codec"
	"bundling/internal/server"
)

// TestFleetPatchDifferential is the clustered serving half of the
// differential harness: a server whose sessions are cluster coordinators
// over two HTTP workers takes PATCH mutations — JSON and binary codec
// payloads interleaved — and after every round all five algorithms plus
// Evaluate must agree with a from-scratch local rebuild within 1e-9.
func TestFleetPatchDifferential(t *testing.T) {
	const consumers, items, seed = 150, 12, 4
	workers := make([]*Worker, 2)
	transports := make([]Transport, 2)
	for i := range workers {
		workers[i] = NewWorker(WorkerConfig{})
		wts := httptest.NewServer(workers[i].Handler())
		defer wts.Close()
		transports[i] = NewHTTP(wts.URL, nil)
	}
	srv := server.New(server.Config{
		NewSolver: func(w *bundling.Matrix, opts bundling.Options) (server.Solver, error) {
			return NewSolver(w, opts, Config{Workers: transports})
		},
	})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	post := func(path, body string) (int, string) {
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(raw)
	}
	patch := func(contentType string, body []byte) (int, string) {
		req, err := http.NewRequest(http.MethodPatch, ts.URL+"/v1/corpora/fd", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", contentType)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(raw)
	}

	opts := bundling.Options{Theta: -0.1, StripeSize: 16}
	w := testMatrix(t, consumers, items, seed)
	createBody, err := json.Marshal(server.CreateCorpusRequest{
		ID:      "fd",
		Options: server.NewOptionsDoc(opts),
		Matrix:  bundling.NewMatrixDoc(w),
	})
	if err != nil {
		t.Fatal(err)
	}
	if code, body := post("/v1/corpora", string(createBody)); code != http.StatusCreated {
		t.Fatalf("upload: %d: %s", code, body)
	}

	rng := rand.New(rand.NewSource(seed))
	var history [][]bundling.DeltaCell
	for round := 0; round < 3; round++ {
		cells := clusterDelta(rng, consumers, items, 6)
		history = append(history, cells)
		var code int
		var body string
		if round%2 == 0 {
			buf, err := json.Marshal(server.MutateCorpusRequest{Cells: cells})
			if err != nil {
				t.Fatal(err)
			}
			code, body = patch("application/json", buf)
		} else {
			d := codec.DeltaFromCells("fd", uint64(round+1), cells)
			code, body = patch(codec.ContentType, codec.EncodeDelta(d))
		}
		if code != http.StatusOK {
			t.Fatalf("round %d: patch: %d: %s", round, code, body)
		}
		var out server.MutateCorpusResponse
		if err := json.Unmarshal([]byte(body), &out); err != nil {
			t.Fatal(err)
		}
		if out.Version != round+2 {
			t.Fatalf("round %d: generation %d, want %d", round, out.Version, round+2)
		}

		rebuilt := replayMatrix(t, consumers, items, seed, history)
		direct, err := bundling.NewSolver(rebuilt, opts)
		if err != nil {
			t.Fatal(err)
		}
		for _, alg := range bundling.Algorithms() {
			want, err := direct.Solve(alg)
			if err != nil {
				t.Fatal(err)
			}
			code, body := post("/v1/corpora/fd/solve", fmt.Sprintf(`{"algorithm":%q}`, alg.Name()))
			if code != http.StatusOK {
				t.Fatalf("round %d: solve %s: %d: %s", round, alg.Name(), code, body)
			}
			var out server.SolveResponse
			if err := json.Unmarshal([]byte(body), &out); err != nil {
				t.Fatal(err)
			}
			if out.Cached {
				t.Fatalf("round %d: %s served a cached result across the mutation", round, alg.Name())
			}
			if math.Abs(out.Config.Revenue-want.Revenue) > 1e-9*(1+math.Abs(want.Revenue)) {
				t.Fatalf("round %d %s: revenue %.12f != rebuild %.12f", round, alg.Name(), out.Config.Revenue, want.Revenue)
			}
		}
		want, err := direct.Evaluate(evalOffers())
		if err != nil {
			t.Fatal(err)
		}
		offers, err := json.Marshal(evalOffers())
		if err != nil {
			t.Fatal(err)
		}
		code, body = post("/v1/corpora/fd/evaluate", fmt.Sprintf(`{"offers":%s}`, offers))
		if code != http.StatusOK {
			t.Fatalf("round %d: evaluate: %d: %s", round, code, body)
		}
		var ev server.EvaluateResponse
		if err := json.Unmarshal([]byte(body), &ev); err != nil {
			t.Fatal(err)
		}
		if math.Abs(ev.Config.Revenue-want.Revenue) > 1e-9*(1+math.Abs(want.Revenue)) {
			t.Fatalf("round %d evaluate: %.12f != %.12f", round, ev.Config.Revenue, want.Revenue)
		}
	}

	// The mutated spans must be resident on the workers: every worker that
	// held spans before the chain still serves spans for the live session.
	var spans int
	for _, wk := range workers {
		spans += len(wk.Health().Spans)
	}
	if spans == 0 {
		t.Fatal("no spans resident on workers after delta chain")
	}
}
