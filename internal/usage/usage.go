// Package usage is the dependency-free workload-accounting core of the
// serving stack: bounded-cardinality meters that answer "which tenant is
// burning the fleet" and "which corpus is hot" without ever letting
// user-supplied identifiers explode the metrics exposition.
//
// A Meter tracks, per key (a tenant ID, a corpus ID, a worker address),
// lifetime totals — request count, errors, wall-clock seconds, bytes in and
// out, cache hits — plus a sliding-window request count from which a
// per-second rate is derived. At most TopK distinct keys hold their own
// slot at a time. A new key past that bound first tries to reclaim a slot
// whose holder has gone idle — no requests inside the sliding window — in
// which case the idle key's totals fold into the reserved "other" bucket
// (sums across a snapshot stay conserved); while every slot-holder is
// still busy, the new key collapses into "other" itself. Either way the
// exposition stays at TopK+1 series no matter how many distinct IDs
// traffic presents, and a burst of early one-off IDs cannot permanently
// squat the table. The clock is injectable for deterministic window tests,
// and all methods are safe for concurrent use.
package usage

import (
	"sort"
	"strings"
	"sync"
	"time"
)

// Other is the reserved overflow key: every key past the meter's TopK bound
// accounts here (along with the carried-over totals of idle keys whose slot
// was reclaimed), as does a (hostile or unlucky) real key literally named
// "other" — folding it in keeps the bucket unambiguous in the exposition.
const Other = "other"

// Config tunes a Meter. The zero value tracks 32 keys over a 60-second
// window split into 12 slots.
type Config struct {
	// TopK bounds the distinct keys tracked individually at any moment;
	// past it a new key evicts a window-idle holder or collapses into the
	// Other bucket (0 = 32).
	TopK int
	// Window is the sliding interval behind WindowRequests/RatePerSec
	// (0 = 60s).
	Window time.Duration
	// Slots is the bucket count the window is split into — the rolling
	// granularity (0 = 12).
	Slots int
	// Now is the meter's clock, injectable for tests (nil = time.Now).
	Now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.TopK <= 0 {
		c.TopK = 32
	}
	if c.Window <= 0 {
		c.Window = 60 * time.Second
	}
	if c.Slots <= 0 {
		c.Slots = 12
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Sample is one accounted event — typically one completed HTTP request.
type Sample struct {
	// Err marks an event that ended in an error response.
	Err bool
	// Wall is the event's wall-clock duration.
	Wall time.Duration
	// BytesIn and BytesOut are the request and response payload sizes.
	BytesIn, BytesOut int64
	// CacheHit marks an event served from a result cache.
	CacheHit bool
}

// Totals is the lifetime accumulation for one key.
type Totals struct {
	Requests    int64   `json:"requests"`
	Errors      int64   `json:"errors"`
	CacheHits   int64   `json:"cache_hits"`
	BytesIn     int64   `json:"bytes_in"`
	BytesOut    int64   `json:"bytes_out"`
	WallSeconds float64 `json:"wall_seconds"`
}

// Row is one key's snapshot: lifetime totals plus the sliding-window view.
type Row struct {
	// Key is the metered identifier; Other for the overflow bucket.
	Key string `json:"key"`
	Totals
	// WindowRequests is the request count inside the sliding window.
	WindowRequests int64 `json:"window_requests"`
	// RatePerSec is WindowRequests spread over the window length.
	RatePerSec float64 `json:"rate_per_sec"`
}

// entry is one key's live state: totals plus the window's slot ring.
type entry struct {
	total Totals
	ring  []int64 // per-slot request counts
	slot  int64   // absolute slot index of the ring's current head
}

// Meter is a bounded top-K sliding-window accounting table.
type Meter struct {
	cfg  Config
	slot time.Duration // window / slots

	mu      sync.Mutex
	entries map[string]*entry // real keys only, ≤ TopK
	other   *entry            // overflow bucket, outside the TopK bound
}

// NewMeter returns a meter with the given bounds.
func NewMeter(cfg Config) *Meter {
	cfg = cfg.withDefaults()
	return &Meter{
		cfg:     cfg,
		slot:    cfg.Window / time.Duration(cfg.Slots),
		entries: make(map[string]*entry, cfg.TopK),
	}
}

// Window returns the meter's sliding-window length.
func (m *Meter) Window() time.Duration { return m.cfg.Window }

// newEntry allocates an entry positioned at the current absolute slot.
func (m *Meter) newEntry(now time.Time) *entry {
	return &entry{ring: make([]int64, m.cfg.Slots), slot: m.absSlot(now)}
}

// absSlot maps a time to its absolute slot index.
func (m *Meter) absSlot(now time.Time) int64 { return now.UnixNano() / int64(m.slot) }

// roll advances an entry's ring to the current slot, zeroing every slot the
// clock skipped (bounded by the ring length — after a full window of
// silence the whole ring clears).
func (e *entry) roll(abs int64) {
	gap := abs - e.slot
	if gap <= 0 {
		return
	}
	if gap > int64(len(e.ring)) {
		gap = int64(len(e.ring))
	}
	for i := int64(1); i <= gap; i++ {
		e.ring[(e.slot+i)%int64(len(e.ring))] = 0
	}
	e.slot = abs
}

// Add accounts one event under key. Up to TopK distinct keys are tracked
// individually, in arrival order; once the table is full a new key first
// reclaims a window-idle slot (reclaim) and otherwise — like the literal
// Other key always — collapses deterministically into the overflow bucket.
func (m *Meter) Add(key string, s Sample) {
	now := m.cfg.Now()
	m.mu.Lock()
	defer m.mu.Unlock()
	abs := m.absSlot(now)
	e, ok := m.entries[key]
	if !ok {
		if key != Other {
			if len(m.entries) >= m.cfg.TopK {
				m.reclaim(abs, now)
			}
			if len(m.entries) < m.cfg.TopK {
				e = m.newEntry(now)
				m.entries[key] = e
			}
		}
		if e == nil {
			if m.other == nil {
				m.other = m.newEntry(now)
			}
			e = m.other
		}
	}
	e.roll(abs)
	e.ring[abs%int64(len(e.ring))]++
	e.total.Requests++
	if s.Err {
		e.total.Errors++
	}
	if s.CacheHit {
		e.total.CacheHits++
	}
	e.total.BytesIn += s.BytesIn
	e.total.BytesOut += s.BytesOut
	e.total.WallSeconds += s.Wall.Seconds()
}

// reclaim frees one slot held by an idle key — zero requests inside the
// sliding window — so a full table tracks keys that are actually busy
// rather than whichever TopK arrived first. The victim is deterministic:
// the idle entry with the fewest lifetime requests, ties broken by key.
// Its totals fold into the overflow bucket so sums across a snapshot stay
// conserved (a reclaimed key that returns restarts its own series from
// zero — a counter reset to a scraper). With every holder busy nothing is
// evicted and the caller's key lands in the overflow bucket. Callers hold
// m.mu.
func (m *Meter) reclaim(abs int64, now time.Time) {
	var victimKey string
	var victim *entry
	for key, e := range m.entries {
		e.roll(abs)
		idle := true
		for _, c := range e.ring {
			if c != 0 {
				idle = false
				break
			}
		}
		if !idle {
			continue
		}
		if victim == nil || e.total.Requests < victim.total.Requests ||
			(e.total.Requests == victim.total.Requests && key < victimKey) {
			victimKey, victim = key, e
		}
	}
	if victim == nil {
		return
	}
	delete(m.entries, victimKey)
	if m.other == nil {
		m.other = m.newEntry(now)
	}
	t, v := &m.other.total, victim.total
	t.Requests += v.Requests
	t.Errors += v.Errors
	t.CacheHits += v.CacheHits
	t.BytesIn += v.BytesIn
	t.BytesOut += v.BytesOut
	t.WallSeconds += v.WallSeconds
}

// row snapshots one entry at the current slot. Callers hold m.mu.
func (m *Meter) row(key string, e *entry, abs int64) Row {
	e.roll(abs)
	var win int64
	for _, c := range e.ring {
		win += c
	}
	return Row{
		Key:            key,
		Totals:         e.total,
		WindowRequests: win,
		RatePerSec:     float64(win) / m.cfg.Window.Seconds(),
	}
}

// Snapshot returns every tracked key's row, busiest first (by lifetime
// request count, ties broken by key), with the overflow bucket — if it ever
// absorbed traffic — always last regardless of its size.
func (m *Meter) Snapshot() []Row {
	now := m.cfg.Now()
	m.mu.Lock()
	defer m.mu.Unlock()
	abs := m.absSlot(now)
	rows := make([]Row, 0, len(m.entries)+1)
	for key, e := range m.entries {
		rows = append(rows, m.row(key, e, abs))
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Requests != rows[j].Requests {
			return rows[i].Requests > rows[j].Requests
		}
		return rows[i].Key < rows[j].Key
	})
	if m.other != nil {
		rows = append(rows, m.row(Other, m.other, abs))
	}
	return rows
}

// Get returns one key's row (the overflow bucket under Other) and whether
// the key is tracked.
func (m *Meter) Get(key string) (Row, bool) {
	now := m.cfg.Now()
	m.mu.Lock()
	defer m.mu.Unlock()
	abs := m.absSlot(now)
	if key == Other {
		if m.other == nil {
			return Row{}, false
		}
		return m.row(Other, m.other, abs), true
	}
	e, ok := m.entries[key]
	if !ok {
		return Row{}, false
	}
	return m.row(key, e, abs), true
}

// Keys returns the count of individually tracked keys (the overflow bucket
// excluded) — the exposition's cardinality bound check.
func (m *Meter) Keys() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.entries)
}

// maxLabelRunes caps a sanitized label value so one hostile ID cannot bloat
// every scrape.
const maxLabelRunes = 120

// SanitizeLabel makes a user-supplied identifier safe as a Prometheus label
// value: backslash, double quote and newline are escaped per the text
// exposition format, every other control character becomes '_', and the
// result is truncated to a bounded rune count. The empty string stays
// empty; callers label anonymous traffic explicitly.
func SanitizeLabel(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	n := 0
	for _, r := range s {
		if n >= maxLabelRunes {
			break
		}
		switch {
		case r == '\\':
			b.WriteString(`\\`)
		case r == '"':
			b.WriteString(`\"`)
		case r == '\n':
			b.WriteString(`\n`)
		case r < 0x20 || r == 0x7f:
			b.WriteByte('_')
		default:
			b.WriteRune(r)
		}
		n++
	}
	return b.String()
}
