package pricing

import "bundling/internal/adoption"

// Joint mixed-bundling pricing — the relaxation the paper defers to future
// work (Sec. 4.2: "we adopt an incremental policy where the prices of
// components are determined first ... We would investigate a relaxation of
// this policy as future work").
//
// Instead of freezing the component prices at their individually-optimal
// values and conditioning the bundle price on them, PriceMixedJoint
// searches the full (p₁, p₂, p_b) grid subject to the same Guiltinan
// constraints (p_b > max(p₁,p₂), p_b < p₁+p₂), with every consumer choosing
// the surplus-maximizing affordable option among {nothing, b₁, b₂, both
// separately, bundle}. The search is O(G³·m) for G levels per dimension,
// which is why the paper's inner loop cannot afford it; the extension
// experiment runs it on single offers to quantify what the incremental
// policy leaves on the table.

// JointOffer is a two-component mixed offer to be priced jointly. The
// slices are aligned per consumer; W1/W2 are component WTPs (0 when
// uninterested), WB the bundle WTP (Eq. 1 over all items).
type JointOffer struct {
	W1, W2, WB []float64
}

// JointQuote is the jointly-optimal price triple and its expected revenue.
type JointQuote struct {
	P1, P2, PB float64
	Revenue    float64
}

// PriceMixedJoint searches grid³ price triples (plus any seed triples) and
// returns the revenue-maximizing one. Seeds let the caller guarantee the
// result dominates a known policy (e.g. the incremental triple). grid is
// clamped to [2, 60] to keep the cubic search bounded.
func (p *Pricer) PriceMixedJoint(off JointOffer, grid int, seeds ...JointQuote) JointQuote {
	if len(off.W1) != len(off.WB) || len(off.W2) != len(off.WB) {
		panic("pricing: misaligned joint offer vectors")
	}
	if grid < 2 {
		grid = 2
	}
	if grid > 60 {
		grid = 60
	}
	max1, max2 := 0.0, 0.0
	alpha := p.model.Alpha()
	for j := range off.WB {
		if v := alpha * off.W1[j]; v > max1 {
			max1 = v
		}
		if v := alpha * off.W2[j]; v > max2 {
			max2 = v
		}
	}
	best := JointQuote{}
	try := func(p1, p2, pb float64) {
		if p1 <= 0 || p2 <= 0 {
			return
		}
		lo := p1
		if p2 > lo {
			lo = p2
		}
		if pb <= lo || pb >= p1+p2 {
			return
		}
		rev := p.jointRevenue(off, p1, p2, pb)
		if rev > best.Revenue {
			best = JointQuote{P1: p1, P2: p2, PB: pb, Revenue: rev}
		}
	}
	for _, s := range seeds {
		try(s.P1, s.P2, s.PB)
	}
	for i := 1; i <= grid; i++ {
		p1 := max1 * float64(i) / float64(grid)
		for j := 1; j <= grid; j++ {
			p2 := max2 * float64(j) / float64(grid)
			lo := p1
			if p2 > lo {
				lo = p2
			}
			hi := p1 + p2
			for k := 1; k <= grid; k++ {
				try(p1, p2, lo+(hi-lo)*float64(k)/float64(grid+1))
			}
		}
	}
	return best
}

// EvaluateJoint returns the expected revenue of the offer {b₁ at p1, b₂ at
// p2, bundle at pb} under the joint choice model, without any search.
// Callers use it to evaluate a fixed policy (e.g. the incremental triple)
// on the same footing PriceMixedJoint optimizes over.
func (p *Pricer) EvaluateJoint(off JointOffer, p1, p2, pb float64) float64 {
	if len(off.W1) != len(off.WB) || len(off.W2) != len(off.WB) {
		panic("pricing: misaligned joint offer vectors")
	}
	return p.jointRevenue(off, p1, p2, pb)
}

// jointRevenue evaluates the offer {b₁ at p1, b₂ at p2, bundle at pb}:
// every consumer picks the surplus-maximizing affordable option, ties
// toward the larger payment; stochastic models weight the chosen option's
// payment by its adoption probability.
func (p *Pricer) jointRevenue(off JointOffer, p1, p2, pb float64) float64 {
	const eps = adoption.DefaultEpsilon
	alpha := p.model.Alpha()
	var rev float64
	for j := range off.WB {
		w1, w2, wb := alpha*off.W1[j], alpha*off.W2[j], alpha*off.WB[j]
		bestSurplus, bestPay, bestWTP := 0.0, 0.0, 0.0
		consider := func(s, pay, w float64) {
			if s < -eps || pay <= 0 {
				return
			}
			if s > bestSurplus+eps || (s >= bestSurplus-eps && pay > bestPay) {
				bestSurplus, bestPay, bestWTP = s, pay, w
			}
		}
		if w1 > 0 {
			consider(w1-p1, p1, w1)
		}
		if w2 > 0 {
			consider(w2-p2, p2, w2)
		}
		if w1 > 0 && w2 > 0 && w1-p1 >= -eps && w2-p2 >= -eps {
			consider((w1-p1)+(w2-p2), p1+p2, w1+w2)
		}
		if wb > 0 {
			consider(wb-pb, pb, wb)
		}
		if bestPay <= 0 {
			continue
		}
		if p.model.Deterministic() {
			rev += bestPay
		} else {
			rev += bestPay * p.model.Probability(bestPay, bestWTP)
		}
	}
	return rev
}
