package main

// The mutate experiment certifies the incremental mutation path on the
// generated corpus through a real HTTP server: a full binary re-upload
// (decode + session rebuild + registry swap) is timed against PATCH deltas
// of one cell and of a batch, every mutation is replayed onto a shadow
// matrix, and at the end the patched session must agree with a solver built
// from scratch on the shadow within 1e-9. The harness prints a
// machine-greppable mutate_gate line and fails unless a 1-cell delta costs
// under 5% of a full re-upload, so the committed BENCH_mutate.json is a
// correctness and cost certificate for delta upserts, not just a timing.

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"net/http/httptest"
	"os"
	"runtime"
	"time"

	"bundling"
	"bundling/client"
	"bundling/internal/codec"
	"bundling/internal/config"
	"bundling/internal/experiments"
	"bundling/internal/server"
)

// MutateReport is the file schema of BENCH_mutate.json.
type MutateReport struct {
	GeneratedAt string `json:"generated_at"`
	Scale       string `json:"scale"`
	Users       int    `json:"users"`
	Items       int    `json:"items"`
	Entries     int    `json:"entries"`
	Go          string `json:"go"`
	NumCPU      int    `json:"numcpu"`
	MaxProcs    int    `json:"maxprocs"`

	// Payload bytes on the wire: the full binary corpus record vs a 1-cell
	// binary delta envelope.
	UploadBytes int `json:"upload_bytes"`
	Delta1Bytes int `json:"delta1_bytes"`

	// Mean wall-clock per operation against the HTTP server.
	FullUploadMS   float64 `json:"full_upload_ms"`
	Delta1MS       float64 `json:"delta1_ms"`
	BatchCells     int     `json:"batch_cells"`
	DeltaBatchMS   float64 `json:"delta_batch_ms"`
	UploadRounds   int     `json:"upload_rounds"`
	Delta1Rounds   int     `json:"delta1_rounds"`
	BatchRounds    int     `json:"batch_rounds"`
	FinalGen       int     `json:"final_generation"`
	EquivAlgorithm string  `json:"equiv_algorithm"`
	EquivRelDiff   float64 `json:"equiv_rel_diff"`

	// The acceptance gate: Delta1MS / FullUploadMS must stay under Threshold.
	Delta1OverUpload float64 `json:"delta1_over_upload"`
	Threshold        float64 `json:"threshold"`
	GatePassed       bool    `json:"gate_passed"`
}

// timedRounds runs fn n times and returns the mean wall-clock milliseconds.
func timedRounds(n int, fn func(round int) error) (float64, error) {
	start := time.Now()
	for i := 0; i < n; i++ {
		if err := fn(i); err != nil {
			return 0, err
		}
	}
	return time.Since(start).Seconds() * 1000 / float64(n), nil
}

// runMutate measures delta-apply vs full re-upload and writes
// BENCH_mutate.json with -benchout.
func runMutate(env *experiments.Env, scaleName, outPath string, base config.Params) error {
	users, items := env.W.Consumers(), env.W.Items()
	report := MutateReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Scale:       scaleName,
		Users:       users,
		Items:       items,
		Entries:     env.W.Entries(),
		Go:          runtime.Version(),
		NumCPU:      runtime.NumCPU(),
		MaxProcs:    runtime.GOMAXPROCS(0),
		Threshold:   0.05,
	}

	srv := server.New(server.Config{})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := client.New(ts.URL, nil)
	ctx := context.Background()

	opts := bundling.Options{
		Strategy:    bundling.Mixed,
		Theta:       base.Theta,
		Parallelism: base.Parallelism,
	}
	// The shadow: an independent copy of the corpus that every mutation is
	// replayed onto, so the final equivalence check rebuilds from scratch.
	shadow, err := bundling.NewMatrixDoc(env.W).Matrix()
	if err != nil {
		return err
	}

	// --- full upload: the baseline the delta path must beat --------------
	optsJSON, err := json.Marshal(client.OptionsFromLibrary(opts))
	if err != nil {
		return err
	}
	doc := bundling.NewMatrixDoc(env.W)
	payload, err := codec.EncodeRecord(&codec.Record{
		ID: "mut", OptionsJSON: optsJSON, Matrix: codec.MatrixData(*doc),
	})
	if err != nil {
		return err
	}
	report.UploadBytes = len(payload)
	if _, err := c.UploadMatrixBin(ctx, "mut", env.W, opts); err != nil {
		return fmt.Errorf("initial upload: %w", err)
	}
	report.UploadRounds = 5
	report.FullUploadMS, err = timedRounds(report.UploadRounds, func(int) error {
		_, err := c.UploadMatrixBin(ctx, "mut", env.W, opts)
		return err
	})
	if err != nil {
		return fmt.Errorf("full re-upload: %w", err)
	}
	fmt.Printf("mutate: full re-upload %.1f ms mean (%d rounds, %d bytes)\n",
		report.FullUploadMS, report.UploadRounds, report.UploadBytes)

	// --- 1-cell delta: the tentpole measurement --------------------------
	// Each round upserts a fresh value into one existing cell — the smallest
	// possible mutation, end to end through decode, incremental posting
	// maintenance, singleton repair and the registry swap.
	rng := rand.New(rand.NewSource(7))
	oneCell := func(round int) []client.DeltaCell {
		u := rng.Intn(users)
		i := rng.Intn(items)
		return []client.DeltaCell{{Consumer: u, Item: i, Value: 1 + float64(round%20) + rng.Float64()*10}}
	}
	report.Delta1Rounds = 30
	var applied [][]client.DeltaCell
	report.Delta1MS, err = timedRounds(report.Delta1Rounds, func(round int) error {
		cells := oneCell(round)
		applied = append(applied, cells)
		out, err := c.PatchCorpusBin(ctx, "mut", 0, cells)
		if err != nil {
			return err
		}
		report.FinalGen = out.Version
		return nil
	})
	if err != nil {
		return fmt.Errorf("1-cell delta: %w", err)
	}
	report.Delta1Bytes = len(codec.EncodeDelta(codec.DeltaFromCells("mut", 0, []bundling.DeltaCell{{Consumer: 0, Item: 0, Value: 1}})))
	fmt.Printf("mutate: 1-cell delta %.2f ms mean (%d rounds, %d bytes)\n",
		report.Delta1MS, report.Delta1Rounds, report.Delta1Bytes)

	// --- batch delta: the amortized shape --------------------------------
	report.BatchCells, report.BatchRounds = 128, 3
	report.DeltaBatchMS, err = timedRounds(report.BatchRounds, func(round int) error {
		cells := make([]client.DeltaCell, 0, report.BatchCells)
		for len(cells) < report.BatchCells {
			u, i := rng.Intn(users), rng.Intn(items)
			cell := client.DeltaCell{Consumer: u, Item: i}
			if rng.Intn(4) == 0 && shadowHas(shadow, applied, u, i) {
				cell.Delete = true
			} else {
				cell.Value = 1 + rng.Float64()*30
			}
			cells = append(cells, cell)
		}
		applied = append(applied, cells)
		out, err := c.PatchCorpusBin(ctx, "mut", 0, cells)
		if err != nil {
			return err
		}
		report.FinalGen = out.Version
		return nil
	})
	if err != nil {
		return fmt.Errorf("batch delta: %w", err)
	}
	fmt.Printf("mutate: %d-cell delta %.2f ms mean (%d rounds)\n",
		report.BatchCells, report.DeltaBatchMS, report.BatchRounds)

	// --- equivalence: the patched session vs a from-scratch rebuild ------
	for _, batch := range applied {
		for _, cell := range batch {
			if cell.Delete {
				if err := shadow.Delete(cell.Consumer, cell.Item); err != nil {
					return err
				}
			} else {
				shadow.MustSet(cell.Consumer, cell.Item, cell.Value)
			}
		}
	}
	direct, err := bundling.NewSolver(shadow, opts)
	if err != nil {
		return err
	}
	want, err := direct.Solve(bundling.Greedy())
	if err != nil {
		return err
	}
	got, err := c.Solve(ctx, "mut", "greedy")
	if err != nil {
		return err
	}
	report.EquivAlgorithm = "greedy"
	report.EquivRelDiff = math.Abs(got.Config.Revenue-want.Revenue) / (1 + math.Abs(want.Revenue))
	fmt.Printf("mutate: greedy equivalence after %d mutation batches, rel diff %.3g\n",
		len(applied), report.EquivRelDiff)
	if report.EquivRelDiff > 1e-9 {
		return fmt.Errorf("patched session diverged from rebuild: rel diff %.3g > 1e-9", report.EquivRelDiff)
	}

	report.Delta1OverUpload = report.Delta1MS / report.FullUploadMS
	report.GatePassed = report.Delta1OverUpload < report.Threshold
	status := "ok"
	if !report.GatePassed {
		status = "fail"
	}
	fmt.Printf("mutate_gate=%s delta1_ms=%.2f upload_ms=%.1f ratio=%.4f threshold=%.2f\n\n",
		status, report.Delta1MS, report.FullUploadMS, report.Delta1OverUpload, report.Threshold)

	if outPath != "" {
		buf, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(outPath, append(buf, '\n'), 0o644); err != nil {
			return err
		}
	}
	if !report.GatePassed {
		return fmt.Errorf("mutate gate failed: a 1-cell delta costs %.1f%% of a full re-upload (budget 5%%)",
			report.Delta1OverUpload*100)
	}
	return nil
}

// shadowHas reports whether cell (u,i) is currently set, given the base
// shadow matrix and the mutation batches applied so far (later wins).
func shadowHas(shadow *bundling.Matrix, applied [][]client.DeltaCell, u, i int) bool {
	for b := len(applied) - 1; b >= 0; b-- {
		batch := applied[b]
		for k := len(batch) - 1; k >= 0; k-- {
			if batch[k].Consumer == u && batch[k].Item == i {
				return !batch[k].Delete
			}
		}
	}
	return shadow.At(u, i) > 0
}
