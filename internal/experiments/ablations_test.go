package experiments

import (
	"strings"
	"testing"

	"bundling/internal/config"
)

// TestAblations verifies the invariants each ablation asserts.
func TestAblations(t *testing.T) {
	env := testEnv(t)
	res, err := Ablations(env, config.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(res.Rows))
	}
	// Pruning is lossless for θ ≤ 0.
	pruning := res.Rows[0]
	if pruning.RevenueDeltaPct < -0.01 || pruning.RevenueDeltaPct > 0.01 {
		t.Errorf("pruning must not change revenue, Δ = %+.3f%%", pruning.RevenueDeltaPct)
	}
	// Bucketed sigmoid pricing agrees with exact within a fraction of a %.
	sig := res.Rows[1]
	if sig.RevenueDeltaPct < -1 || sig.RevenueDeltaPct > 1 {
		t.Errorf("bucketed vs exact sigmoid revenue Δ = %+.3f%%, want within ±1%%", sig.RevenueDeltaPct)
	}
	// Run-to-end never loses revenue and, per the paper, gains little.
	rte := res.Rows[3]
	if rte.RevenueDeltaPct < -1e-6 {
		t.Errorf("run-to-end lost revenue: Δ = %+.3f%%", rte.RevenueDeltaPct)
	}
	if rte.RevenueDeltaPct > 5 {
		t.Errorf("run-to-end gained %+.2f%%, expected marginal gain", rte.RevenueDeltaPct)
	}
	if !strings.Contains(res.Render(), "Ablations") {
		t.Error("render should be titled")
	}
}

// TestJointPolicy verifies the future-work study: joint pricing never
// loses to the incremental policy and typically improves some pairs.
func TestJointPolicy(t *testing.T) {
	env := testEnv(t)
	res, err := JointPolicy(env, 15, config.DefaultParams(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Pairs == 0 {
		t.Fatal("no pairs evaluated")
	}
	if res.MeanJoint < res.MeanIncremental-1e-9 {
		t.Errorf("joint mean %g below incremental mean %g", res.MeanJoint, res.MeanIncremental)
	}
	if res.MeanUpliftPct < -1e-9 {
		t.Errorf("negative mean uplift %g", res.MeanUpliftPct)
	}
	if !strings.Contains(res.Render(), "joint") {
		t.Error("render should mention joint pricing")
	}
}

// TestWelfare checks the decomposition identities and that welfare never
// exceeds aggregate willingness to pay at θ = 0.
func TestWelfare(t *testing.T) {
	env := testEnv(t)
	res, err := Welfare(env, config.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(AllMethods()) {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Welfare > res.TotalWTP+1e-6 {
			t.Errorf("%s: welfare %g exceeds total WTP %g", row.Method, row.Welfare, res.TotalWTP)
		}
		if row.Surplus < -1e-9 || row.Revenue < 0 {
			t.Errorf("%s: negative component %+v", row.Method, row)
		}
		if d := row.Welfare - row.Revenue - row.Surplus; d > 1e-9 || d < -1e-9 {
			t.Errorf("%s: welfare identity broken", row.Method)
		}
	}
	if !strings.Contains(res.Render(), "Welfare") {
		t.Error("render title")
	}
}
