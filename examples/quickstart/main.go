// Quickstart reproduces the paper's introductory example (Table 1): three
// consumers, two items, and the revenue of the three selling strategies —
// individual components, pure bundling, and mixed bundling — driven
// through the session API: one Solver per strategy serves every algorithm.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"bundling"
)

func main() {
	// Willingness to pay, straight from the paper's Table 1:
	//            item A   item B
	//   u1       $12.00    $4.00
	//   u2        $8.00    $2.00
	//   u3        $5.00   $11.00
	w := bundling.NewMatrix(3, 2)
	w.MustSet(0, 0, 12)
	w.MustSet(0, 1, 4)
	w.MustSet(1, 0, 8)
	w.MustSet(1, 1, 2)
	w.MustSet(2, 0, 5)
	w.MustSet(2, 1, 11)

	// The two books are mild substitutes: θ = -0.05. NewSolver indexes the
	// matrix once; every Solve below reuses that index. (With three
	// consumers everything fits one stripe — Options.StripeSize matters
	// only at corpus scale.)
	opts := bundling.Options{Theta: -0.05, PriceLevels: 2000}
	solver, err := bundling.NewSolver(w, opts)
	if err != nil {
		log.Fatal(err)
	}

	components, err := solver.Solve(bundling.Components())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Components:     revenue $%.2f\n", components.Revenue)
	for _, b := range components.Bundles {
		fmt.Printf("  item %v at $%.2f → $%.2f\n", b.Items, b.Price, b.Revenue)
	}

	pure, err := solver.Solve(bundling.Matching()) // pure bundling is the default
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Pure bundling:  revenue $%.2f\n", pure.Revenue)
	for _, b := range pure.Bundles {
		fmt.Printf("  bundle %v at $%.2f → $%.2f\n", b.Items, b.Price, b.Revenue)
	}

	// Mixed bundling is a different strategy, hence its own session.
	opts.Strategy = bundling.Mixed
	mixedSolver, err := bundling.NewSolver(w, opts)
	if err != nil {
		log.Fatal(err)
	}
	mixed, err := mixedSolver.Solve(bundling.Matching())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Mixed bundling: revenue $%.2f\n", mixed.Revenue)
	for _, b := range mixed.Bundles {
		fmt.Printf("  bundle %v at $%.2f (adds $%.2f)\n", b.Items, b.Price, b.Revenue)
	}
	for _, c := range mixed.Components {
		fmt.Printf("  component %v stays on sale at $%.2f\n", c.Items, c.Price)
	}

	// What-if traffic runs on the same warm session: price the seller's own
	// proposal — both items bundled, item A also sold alone.
	whatIf, err := mixedSolver.Evaluate([][]int{{0, 1}, {0}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("What-if {A,B}+{A}: revenue $%.2f\n", whatIf.Revenue)

	gain, err := bundling.Gain(mixed, w, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nMixed bundling gains %.1f%% over selling items individually.\n", gain)
}
