package server

import (
	"container/list"
	"sync"

	"bundling"
)

// resultCache is an LRU-bounded cache of solved/evaluated configurations.
// Keys embed the corpus ID, its registry version and the matrix snapshot
// version (see session.cacheKey), so a re-uploaded corpus can never be
// served a predecessor's results: the new version simply misses, and the
// stale entries age out of the LRU tail.
//
// Values are *bundling.Configuration shared by every hit; they are treated
// as immutable by all readers.
type resultCache struct {
	mu    sync.Mutex
	max   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element
}

// cacheEntry is one LRU slot.
type cacheEntry struct {
	key string
	cfg *bundling.Configuration
}

// newResultCache returns a cache holding at most max entries; max <= 0
// disables caching (every get misses, every put is dropped).
func newResultCache(max int) *resultCache {
	return &resultCache{max: max, ll: list.New(), items: make(map[string]*list.Element)}
}

// get returns the cached configuration for key, refreshing its recency.
func (c *resultCache) get(key string) (*bundling.Configuration, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).cfg, true
}

// put inserts or refreshes key, evicting the least-recently-used entry when
// the cache is full.
func (c *resultCache) put(key string, cfg *bundling.Configuration) {
	if c.max <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).cfg = cfg
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, cfg: cfg})
	for c.ll.Len() > c.max {
		tail := c.ll.Back()
		c.ll.Remove(tail)
		delete(c.items, tail.Value.(*cacheEntry).key)
	}
}

// len returns the current entry count.
func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
