package config

import (
	"math"
	"testing"

	"bundling/internal/adoption"
	"bundling/internal/wtp"
)

// table1Matrix builds the paper's Table 1 willingness-to-pay matrix:
// items A=0, B=1; consumers u1, u2, u3.
func table1Matrix(t *testing.T) *wtp.Matrix {
	t.Helper()
	w := wtp.MustNew(3, 2)
	w.MustSet(0, 0, 12)
	w.MustSet(0, 1, 4)
	w.MustSet(1, 0, 8)
	w.MustSet(1, 1, 2)
	w.MustSet(2, 0, 5)
	w.MustSet(2, 1, 11)
	return w
}

func fineParams() Params {
	p := DefaultParams()
	p.PriceLevels = 2000 // fine grid so optima land on exact values
	return p
}

func TestParamsValidate(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Params)
	}{
		{"bad strategy", func(p *Params) { p.Strategy = Strategy(9) }},
		{"theta at -1", func(p *Params) { p.Theta = -1 }},
		{"negative k", func(p *Params) { p.K = -1 }},
		{"negative levels", func(p *Params) { p.PriceLevels = -1 }},
		{"zero model", func(p *Params) { p.Model = adoption.Model{} }},
	}
	for _, c := range cases {
		p := DefaultParams()
		c.mut(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: expected validation error", c.name)
		}
	}
	if err := DefaultParams().Validate(); err != nil {
		t.Errorf("defaults should validate: %v", err)
	}
}

func TestStrategyString(t *testing.T) {
	if Pure.String() != "pure" || Mixed.String() != "mixed" {
		t.Error("strategy names")
	}
	if Strategy(7).String() == "" {
		t.Error("unknown strategy should still render")
	}
}

func TestComponentsPaperExample(t *testing.T) {
	w := table1Matrix(t)
	cfg, err := Components(w, fineParams())
	if err != nil {
		t.Fatal(err)
	}
	// pA = 8 (revenue 16), pB = 11 (revenue 11): total 27.
	if math.Abs(cfg.Revenue-27) > 0.1 {
		t.Errorf("components revenue = %g, want 27", cfg.Revenue)
	}
	if len(cfg.Bundles) != 2 {
		t.Fatalf("bundle count = %d, want 2", len(cfg.Bundles))
	}
	if !cfg.CoversAll(2) {
		t.Error("components must cover all items")
	}
	if len(cfg.Components) != 0 {
		t.Error("components baseline retains nothing")
	}
}

func TestComponentsAtPrices(t *testing.T) {
	w := table1Matrix(t)
	// At list prices pA=5, pB=2 everyone buys: revenue 3·5 + 3·2 = 21.
	cfg, err := ComponentsAtPrices(w, []float64{5, 2}, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cfg.Revenue-21) > 1e-9 {
		t.Errorf("revenue = %g, want 21", cfg.Revenue)
	}
	if _, err := ComponentsAtPrices(w, []float64{5}, DefaultParams()); err == nil {
		t.Error("expected error for price count mismatch")
	}
}

func TestPureBundlingPaperExample(t *testing.T) {
	w := table1Matrix(t)
	p := fineParams()
	p.Theta = -0.05
	p.Strategy = Pure
	cfg, err := MatchingBased(w, p)
	if err != nil {
		t.Fatal(err)
	}
	// Bundle WTPs {15.2, 9.5, 15.2} → price 15.2, revenue 30.4 > 27.
	if math.Abs(cfg.Revenue-30.4) > 0.1 {
		t.Errorf("pure revenue = %g, want 30.4", cfg.Revenue)
	}
	if len(cfg.Bundles) != 1 || len(cfg.Bundles[0].Items) != 2 {
		t.Fatalf("expected the single {A,B} bundle, got %+v", cfg.Bundles)
	}
	if !cfg.CoversAll(2) {
		t.Error("pure configuration must partition the items")
	}
}

func TestMixedBundlingPaperExample(t *testing.T) {
	w := table1Matrix(t)
	p := fineParams()
	p.Theta = -0.05
	p.Strategy = Mixed
	cfg, err := MatchingBased(w, p)
	if err != nil {
		t.Fatal(err)
	}
	// Upgrade-consistent mixed revenue: u1 keeps A (8), u2 keeps A (8),
	// u3 upgrades to the bundle (15.2) → 31.2.
	if math.Abs(cfg.Revenue-31.2) > 0.15 {
		t.Errorf("mixed revenue = %g, want ≈ 31.2", cfg.Revenue)
	}
	// Retained components must appear in X'.
	if len(cfg.Components) != 2 {
		t.Fatalf("retained components = %+v, want the two singletons", cfg.Components)
	}
}

func TestBundlingNeverBelowComponents(t *testing.T) {
	// The paper's invariant: bundling reverts to Components when no better
	// solution exists (Sec. 6.6).
	w := smallRandomMatrix(t, 40, 12, 5)
	for _, theta := range []float64{-0.2, -0.05, 0, 0.05, 0.2} {
		p := DefaultParams()
		p.Theta = theta
		comp, err := Components(w, p)
		if err != nil {
			t.Fatal(err)
		}
		for name, run := range map[string]func(*wtp.Matrix, Params) (*Configuration, error){
			"matching": MatchingBased,
			"greedy":   GreedyMerge,
		} {
			for _, strat := range []Strategy{Pure, Mixed} {
				p.Strategy = strat
				cfg, err := run(w, p)
				if err != nil {
					t.Fatal(err)
				}
				if cfg.Revenue < comp.Revenue-1e-6 {
					t.Errorf("%s/%v at θ=%g: revenue %g below components %g",
						name, strat, theta, cfg.Revenue, comp.Revenue)
				}
				if !cfg.CoversAll(w.Items()) {
					t.Errorf("%s/%v at θ=%g: configuration does not cover all items", name, strat, theta)
				}
			}
		}
	}
}

func TestRevenueBoundedByTotalWTP(t *testing.T) {
	w := smallRandomMatrix(t, 60, 15, 6)
	for _, theta := range []float64{-0.1, 0} {
		for _, strat := range []Strategy{Pure, Mixed} {
			p := DefaultParams()
			p.Theta = theta
			p.Strategy = strat
			for name, run := range map[string]func(*wtp.Matrix, Params) (*Configuration, error){
				"matching": MatchingBased,
				"greedy":   GreedyMerge,
			} {
				cfg, err := run(w, p)
				if err != nil {
					t.Fatal(err)
				}
				// With θ ≤ 0 no consumer's bundle WTP exceeds their summed
				// item WTP, so revenue ≤ total willingness to pay.
				if cfg.Revenue > w.Total()+1e-6 {
					t.Errorf("%s/%v θ=%g: revenue %g exceeds total WTP %g",
						name, strat, theta, cfg.Revenue, w.Total())
				}
			}
		}
	}
}

func TestSizeCapRespected(t *testing.T) {
	w := smallRandomMatrix(t, 50, 14, 6)
	for _, k := range []int{1, 2, 3, 4} {
		p := DefaultParams()
		p.K = k
		p.Theta = 0.1 // encourage merging
		for name, run := range map[string]func(*wtp.Matrix, Params) (*Configuration, error){
			"matching": MatchingBased,
			"greedy":   GreedyMerge,
		} {
			for _, strat := range []Strategy{Pure, Mixed} {
				p.Strategy = strat
				cfg, err := run(w, p)
				if err != nil {
					t.Fatal(err)
				}
				for _, b := range cfg.Bundles {
					if len(b.Items) > k {
						t.Errorf("%s/%v k=%d: bundle %v exceeds cap", name, strat, k, b.Items)
					}
				}
			}
		}
	}
}

func TestK1EqualsComponents(t *testing.T) {
	w := smallRandomMatrix(t, 40, 10, 5)
	p := DefaultParams()
	p.K = 1
	comp, err := Components(w, p)
	if err != nil {
		t.Fatal(err)
	}
	m, err := MatchingBased(w, p)
	if err != nil {
		t.Fatal(err)
	}
	g, err := GreedyMerge(w, p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Revenue-comp.Revenue) > 1e-9 || math.Abs(g.Revenue-comp.Revenue) > 1e-9 {
		t.Errorf("k=1: matching %g, greedy %g, components %g — all should match",
			m.Revenue, g.Revenue, comp.Revenue)
	}
}

func TestMonotoneInK(t *testing.T) {
	// Larger k can only help (Fig. 5's growth): each cap's solution is
	// feasible under every larger cap for the greedy/matching heuristics.
	w := smallRandomMatrix(t, 60, 12, 6)
	p := DefaultParams()
	p.Theta = 0.1
	p.Strategy = Mixed
	prev := -1.0
	for _, k := range []int{1, 2, 3, 5, Unlimited} {
		p.K = k
		cfg, err := GreedyMerge(w, p)
		if err != nil {
			t.Fatal(err)
		}
		if cfg.Revenue < prev-1e-6 {
			t.Errorf("k=%d: revenue %g dropped below smaller cap's %g", k, cfg.Revenue, prev)
		}
		prev = cfg.Revenue
	}
}

func TestThetaMonotonePure(t *testing.T) {
	// Higher θ (more complementary) never hurts pure bundling revenue.
	w := smallRandomMatrix(t, 50, 10, 5)
	p := DefaultParams()
	p.Strategy = Pure
	prev := -1.0
	for _, theta := range []float64{-0.1, -0.05, 0, 0.05, 0.1, 0.2} {
		p.Theta = theta
		cfg, err := MatchingBased(w, p)
		if err != nil {
			t.Fatal(err)
		}
		if cfg.Revenue < prev-1e-6 {
			t.Errorf("θ=%g: pure revenue %g below previous %g", theta, cfg.Revenue, prev)
		}
		prev = cfg.Revenue
	}
}

func TestTraceMonotone(t *testing.T) {
	w := smallRandomMatrix(t, 80, 16, 6)
	p := DefaultParams()
	p.Strategy = Mixed
	for name, run := range map[string]func(*wtp.Matrix, Params) (*Configuration, error){
		"matching": MatchingBased,
		"greedy":   GreedyMerge,
	} {
		cfg, err := run(w, p)
		if err != nil {
			t.Fatal(err)
		}
		if len(cfg.Trace) == 0 {
			t.Fatalf("%s: empty trace", name)
		}
		for i := 1; i < len(cfg.Trace); i++ {
			if cfg.Trace[i].Revenue < cfg.Trace[i-1].Revenue-1e-9 {
				t.Errorf("%s: trace revenue decreased at %d", name, i)
			}
			if cfg.Trace[i].Elapsed < cfg.Trace[i-1].Elapsed {
				t.Errorf("%s: trace time decreased at %d", name, i)
			}
		}
		last := cfg.Trace[len(cfg.Trace)-1]
		if math.Abs(last.Revenue-cfg.Revenue) > 1e-6 {
			t.Errorf("%s: final trace revenue %g != configuration revenue %g",
				name, last.Revenue, cfg.Revenue)
		}
	}
}

func TestOffersAndCoversAll(t *testing.T) {
	w := smallRandomMatrix(t, 40, 8, 4)
	p := DefaultParams()
	p.Strategy = Mixed
	cfg, err := GreedyMerge(w, p)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(cfg.Offers()); got != len(cfg.Bundles)+len(cfg.Components) {
		t.Errorf("Offers() len = %d", got)
	}
	// CoversAll fails on wrong universe sizes.
	if cfg.CoversAll(w.Items() + 1) {
		t.Error("CoversAll should fail for larger universe")
	}
}
