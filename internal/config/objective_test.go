package config

import (
	"math"
	"testing"
)

// TestDefaultObjectiveCollapses: with α = 1 and zero costs the utility
// and profit equal the revenue on every method.
func TestDefaultObjectiveCollapses(t *testing.T) {
	w := smallRandomMatrix(t, 50, 10, 5)
	p := DefaultParams()
	for name, run := range map[string]func() (*Configuration, error){
		"components": func() (*Configuration, error) { return Components(w, p) },
		"matching":   func() (*Configuration, error) { return MatchingBased(w, p) },
		"greedy":     func() (*Configuration, error) { return GreedyMerge(w, p) },
	} {
		cfg, err := run()
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(cfg.Utility-cfg.Revenue) > 1e-6 || math.Abs(cfg.Profit-cfg.Revenue) > 1e-6 {
			t.Errorf("%s: utility %g, profit %g should equal revenue %g",
				name, cfg.Utility, cfg.Profit, cfg.Revenue)
		}
		if cfg.Surplus < 0 {
			t.Errorf("%s: negative surplus %g", name, cfg.Surplus)
		}
	}
}

// TestUnitCostsReduceProfit: with variable costs profit < revenue and the
// engine rejects a malformed cost vector.
func TestUnitCostsReduceProfit(t *testing.T) {
	w := smallRandomMatrix(t, 60, 10, 5)
	p := DefaultParams()
	p.UnitCosts = make([]float64, w.Items())
	for i := range p.UnitCosts {
		p.UnitCosts[i] = 1.5
	}
	cfg, err := Components(w, p)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Profit >= cfg.Revenue {
		t.Errorf("profit %g should be below revenue %g with unit costs", cfg.Profit, cfg.Revenue)
	}
	free, err := Components(w, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	// Profit-optimal pricing under costs can never beat zero-cost revenue.
	if cfg.Profit > free.Revenue+1e-9 {
		t.Errorf("costed profit %g above zero-cost revenue %g", cfg.Profit, free.Revenue)
	}
	p.UnitCosts = []float64{1} // wrong length
	if _, err := Components(w, p); err == nil {
		t.Error("expected error for cost vector length mismatch")
	}
	p.UnitCosts = make([]float64, w.Items())
	p.UnitCosts[0] = -1
	if _, err := Components(w, p); err == nil {
		t.Error("expected error for negative unit cost")
	}
}

// TestProfitWeightValidation and bounds of α.
func TestProfitWeightValidation(t *testing.T) {
	p := DefaultParams()
	p.ProfitWeight = 1.5
	if err := p.Validate(); err == nil {
		t.Error("α > 1 should fail validation")
	}
	p.ProfitWeight = -0.1
	if err := p.Validate(); err == nil {
		t.Error("α < 0 should fail validation")
	}
}

// TestSurplusWeightRaisesSurplus: lowering α trades profit for surplus,
// on both pure and mixed bundling.
func TestSurplusWeightRaisesSurplus(t *testing.T) {
	w := smallRandomMatrix(t, 80, 12, 5)
	for _, strat := range []Strategy{Pure, Mixed} {
		profitOnly := DefaultParams()
		profitOnly.Strategy = strat
		balanced := profitOnly
		balanced.ProfitWeight = 0.3
		a, err := MatchingBased(w, profitOnly)
		if err != nil {
			t.Fatal(err)
		}
		b, err := MatchingBased(w, balanced)
		if err != nil {
			t.Fatal(err)
		}
		if b.Surplus < a.Surplus-1e-6 {
			t.Errorf("%v: α=0.3 surplus %g below α=1 surplus %g", strat, b.Surplus, a.Surplus)
		}
		if b.Profit > a.Profit+1e-6 {
			t.Errorf("%v: α=0.3 profit %g above α=1 profit %g", strat, b.Profit, a.Profit)
		}
	}
}

// TestMixedCostsStayConsistent: mixed bundling with costs keeps the
// decomposition utility = α·profit + (1-α)·surplus.
func TestMixedCostsStayConsistent(t *testing.T) {
	w := smallRandomMatrix(t, 60, 10, 5)
	p := DefaultParams()
	p.Strategy = Mixed
	p.ProfitWeight = 0.7
	p.UnitCosts = make([]float64, w.Items())
	for i := range p.UnitCosts {
		p.UnitCosts[i] = 0.8
	}
	cfg, err := GreedyMerge(w, p)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.7*cfg.Profit + 0.3*cfg.Surplus
	if math.Abs(cfg.Utility-want) > 1e-6 {
		t.Errorf("utility %g != 0.7·profit + 0.3·surplus = %g", cfg.Utility, want)
	}
	if cfg.Profit > cfg.Revenue {
		t.Errorf("profit %g exceeds revenue %g despite positive costs", cfg.Profit, cfg.Revenue)
	}
}
