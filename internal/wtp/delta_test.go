package wtp

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// randDelta draws a batch of mutations against an m×n matrix: adds, value
// updates, deletes, duplicate coordinates (last wins), and no-op updates that
// rewrite the current value.
func randDelta(rng *rand.Rand, w *Matrix, count int) []Cell {
	cells := make([]Cell, 0, count)
	for len(cells) < count {
		u, i := rng.Intn(w.Consumers()), rng.Intn(w.Items())
		switch rng.Intn(5) {
		case 0: // delete (possibly of an absent cell)
			cells = append(cells, Cell{Consumer: u, Item: i, Delete: true})
		case 1: // no-op update: rewrite whatever is there now
			cells = append(cells, Cell{Consumer: u, Item: i, Value: w.At(u, i)})
		default: // add or update with a fresh value
			cells = append(cells, Cell{Consumer: u, Item: i, Value: math.Round(rng.Float64()*1000) / 10})
		}
		// Occasionally duplicate the previous coordinate with a new value so
		// last-wins collapsing is exercised.
		if len(cells) < count && rng.Intn(4) == 0 {
			prev := cells[len(cells)-1]
			cells = append(cells, Cell{Consumer: prev.Consumer, Item: prev.Item, Value: math.Round(rng.Float64()*1000) / 10})
		}
	}
	return cells
}

// applyRebuild replays the delta onto a from-scratch copy of w via Set/Delete,
// the reference semantics WithDelta must match.
func applyRebuild(t *testing.T, w *Matrix, cells []Cell) *Matrix {
	t.Helper()
	nw := MustNew(w.Consumers(), w.Items())
	for u := 0; u < w.Consumers(); u++ {
		for i := 0; i < w.Items(); i++ {
			if v := w.At(u, i); v != 0 {
				nw.MustSet(u, i, v)
			}
		}
	}
	for _, c := range cells {
		if c.Delete {
			if err := nw.Delete(c.Consumer, c.Item); err != nil {
				t.Fatalf("Delete(%d,%d): %v", c.Consumer, c.Item, err)
			}
		} else {
			nw.MustSet(c.Consumer, c.Item, c.Value)
		}
	}
	return nw
}

// mustEqualMatrices asserts two matrices agree cell for cell, in postings, and
// in their aggregates. Delta application is exact (values are moved, not
// recomputed), so equality is bitwise except for the float-summed aggregates.
func mustEqualMatrices(t *testing.T, got, want *Matrix) {
	t.Helper()
	if got.Consumers() != want.Consumers() || got.Items() != want.Items() {
		t.Fatalf("dimensions %d×%d, want %d×%d", got.Consumers(), got.Items(), want.Consumers(), want.Items())
	}
	for u := 0; u < want.Consumers(); u++ {
		for i := 0; i < want.Items(); i++ {
			if got.At(u, i) != want.At(u, i) {
				t.Fatalf("cell (%d,%d) = %g, want %g", u, i, got.At(u, i), want.At(u, i))
			}
		}
	}
	for i := 0; i < want.Items(); i++ {
		g, w := got.Postings(i), want.Postings(i)
		if len(g) != len(w) {
			t.Fatalf("item %d postings len %d, want %d", i, len(g), len(w))
		}
		for j := range w {
			if g[j] != w[j] {
				t.Fatalf("item %d posting %d = %+v, want %+v", i, j, g[j], w[j])
			}
		}
		if math.Abs(got.ItemTotal(i)-want.ItemTotal(i)) > 1e-9 {
			t.Fatalf("item %d total %g, want %g", i, got.ItemTotal(i), want.ItemTotal(i))
		}
	}
	if math.Abs(got.Total()-want.Total()) > 1e-9 {
		t.Fatalf("total %g, want %g", got.Total(), want.Total())
	}
	if got.Entries() != want.Entries() {
		t.Fatalf("entries %d, want %d", got.Entries(), want.Entries())
	}
}

// mustEqualShards asserts two shards produce identical stripes, offsets
// included, so delta-patched stripes are layout-identical to a rebuild.
func mustEqualShards(t *testing.T, got, want *Shard) {
	t.Helper()
	if got.Stripes() != want.Stripes() || got.StripeSize() != want.StripeSize() {
		t.Fatalf("shard layout %d stripes × %d, want %d × %d", got.Stripes(), got.StripeSize(), want.Stripes(), want.StripeSize())
	}
	for s := 0; s < want.Stripes(); s++ {
		gs, ws := got.Stripe(s), want.Stripe(s)
		glo, ghi := gs.Bounds()
		wlo, whi := ws.Bounds()
		if glo != wlo || ghi != whi {
			t.Fatalf("stripe %d bounds [%d,%d), want [%d,%d)", s, glo, ghi, wlo, whi)
		}
		if len(gs.offs) != len(ws.offs) {
			t.Fatalf("stripe %d offs len %d, want %d", s, len(gs.offs), len(ws.offs))
		}
		for i := range ws.offs {
			if gs.offs[i] != ws.offs[i] {
				t.Fatalf("stripe %d offs[%d] = %d, want %d", s, i, gs.offs[i], ws.offs[i])
			}
		}
		if len(gs.ids) != len(ws.ids) {
			t.Fatalf("stripe %d ids len %d, want %d", s, len(gs.ids), len(ws.ids))
		}
		for j := range ws.ids {
			if gs.ids[j] != ws.ids[j] || gs.vals[j] != ws.vals[j] {
				t.Fatalf("stripe %d entry %d = (%d,%g), want (%d,%g)", s, j, gs.ids[j], gs.vals[j], ws.ids[j], ws.vals[j])
			}
		}
	}
}

// TestWithDeltaMatchesRebuild drives seeded random delta sequences through
// WithDelta / Shard.ApplyDelta / SpanStore.ApplyDelta and asserts each stage
// matches a from-scratch rebuild of the mutated matrix, layout included.
func TestWithDeltaMatchesRebuild(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			m, n := 40+rng.Intn(40), 5+rng.Intn(10)
			w := MustNew(m, n)
			for k := 0; k < m*n/3; k++ {
				w.MustSet(rng.Intn(m), rng.Intn(n), math.Round(rng.Float64()*1000)/10)
			}
			stripeSize := 1 + rng.Intn(16)
			cur, sh := w, w.Shard(stripeSize)
			// Span replicas covering the whole shard in two spans.
			cut := sh.Stripes() / 2
			sp1, err := sh.Span(0, cut).Store()
			if err != nil {
				t.Fatal(err)
			}
			sp2, err := sh.Span(cut, sh.Stripes()).Store()
			if err != nil {
				t.Fatal(err)
			}
			for round := 0; round < 6; round++ {
				cells := randDelta(rng, cur, 1+rng.Intn(20))
				want := applyRebuild(t, cur, cells)
				next, err := cur.WithDelta(cells)
				if err != nil {
					t.Fatalf("round %d WithDelta: %v", round, err)
				}
				mustEqualMatrices(t, next, want)
				if next.Version() != cur.Version()+1 {
					t.Fatalf("round %d version %d, want %d", round, next.Version(), cur.Version()+1)
				}
				nsh, err := sh.ApplyDelta(next, cells)
				if err != nil {
					t.Fatalf("round %d Shard.ApplyDelta: %v", round, err)
				}
				mustEqualShards(t, nsh, next.Shard(stripeSize))
				// Patch the span replicas with their span-scoped cut of the
				// delta and compare against spans of the rebuilt shard.
				for si, sp := range []*SpanStore{sp1, sp2} {
					lo, hi := sp.Bounds()
					var cut []Cell
					for _, c := range cells {
						if c.Consumer >= lo && c.Consumer < hi {
							cut = append(cut, c)
						}
					}
					nsp, err := sp.ApplyDelta(cut, next.Version())
					if err != nil {
						t.Fatalf("round %d span %d ApplyDelta: %v", round, si, err)
					}
					s0, s1 := sp.StripeRange()
					doc := nsh.Span(s0, s1)
					wantSp, err := doc.Store()
					if err != nil {
						t.Fatal(err)
					}
					if nsp.Entries() != wantSp.Entries() {
						t.Fatalf("round %d span %d entries %d, want %d", round, si, nsp.Entries(), wantSp.Entries())
					}
					for k := range wantSp.stripes {
						g, w := &nsp.stripes[k], &wantSp.stripes[k]
						for i := range w.offs {
							if g.offs[i] != w.offs[i] {
								t.Fatalf("round %d span %d stripe %d offs[%d] = %d, want %d", round, si, k, i, g.offs[i], w.offs[i])
							}
						}
						for j := range w.ids {
							if g.ids[j] != w.ids[j] || g.vals[j] != w.vals[j] {
								t.Fatalf("round %d span %d stripe %d entry %d mismatch", round, si, k, j)
							}
						}
					}
					if si == 0 {
						sp1 = nsp
					} else {
						sp2 = nsp
					}
				}
				cur, sh = next, nsh
			}
		})
	}
}

// TestDeltaValidation asserts a delta is rejected whole — receiver untouched —
// on any out-of-range coordinate or invalid value.
func TestDeltaValidation(t *testing.T) {
	w := MustNew(4, 3)
	w.MustSet(1, 1, 5)
	bad := [][]Cell{
		{{Consumer: -1, Item: 0, Value: 1}},
		{{Consumer: 0, Item: 3, Value: 1}},
		{{Consumer: 4, Item: 0, Value: 1}},
		{{Consumer: 0, Item: 0, Value: -1}},
		{{Consumer: 0, Item: 0, Value: math.NaN()}},
		{{Consumer: 0, Item: 0, Value: math.Inf(1)}},
		{{Consumer: 0, Item: 0, Value: 2, Delete: true}},
		{{Consumer: 0, Item: 0, Value: 1}, {Consumer: 9, Item: 0, Value: 1}},
	}
	for k, cells := range bad {
		if _, err := w.WithDelta(cells); err == nil {
			t.Fatalf("case %d: WithDelta accepted invalid delta %+v", k, cells)
		}
	}
	if w.Version() != 1 || w.At(0, 0) != 0 {
		t.Fatalf("receiver mutated by rejected delta: version %d, At(0,0)=%g", w.Version(), w.At(0, 0))
	}
	sh := w.Shard(2)
	if _, err := sh.ApplyDelta(w, []Cell{{Consumer: 9, Item: 0, Value: 1}}); err == nil {
		t.Fatal("Shard.ApplyDelta accepted out-of-range cell")
	}
	sp, err := sh.Span(0, 1).Store()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sp.ApplyDelta([]Cell{{Consumer: 3, Item: 0, Value: 1}}, 7); err == nil {
		t.Fatal("SpanStore.ApplyDelta accepted cell outside span bounds")
	}
}

// TestDeltaCopyOnWrite asserts WithDelta leaves the parent snapshot intact
// and that mutating either matrix afterwards never writes through shared
// backing arrays.
func TestDeltaCopyOnWrite(t *testing.T) {
	w := MustNew(3, 2)
	w.MustSet(0, 0, 1)
	w.MustSet(1, 0, 2)
	w.MustSet(2, 1, 3)
	nw, err := w.WithDelta([]Cell{{Consumer: 0, Item: 0, Value: 9}})
	if err != nil {
		t.Fatal(err)
	}
	if w.At(0, 0) != 1 || nw.At(0, 0) != 9 {
		t.Fatalf("parent/child cells %g/%g, want 1/9", w.At(0, 0), nw.At(0, 0))
	}
	// Mutating the child must not leak into the parent through the shared
	// untouched row (consumer 1) or posting list (item 1).
	nw.MustSet(1, 0, 7)
	nw.MustSet(2, 1, 8)
	if w.At(1, 0) != 2 || w.At(2, 1) != 3 {
		t.Fatalf("parent mutated through shared arrays: %g, %g", w.At(1, 0), w.At(2, 1))
	}
	if p := w.Postings(1); len(p) != 1 || p[0].Value != 3 {
		t.Fatalf("parent posting list mutated: %+v", p)
	}
	// And mutating the parent must not leak into the child.
	w.MustSet(1, 0, 6)
	if nw.At(1, 0) != 7 {
		t.Fatalf("child mutated through shared row: %g", nw.At(1, 0))
	}
}

// TestDeleteTombstone is the regression test for single-cell deletes: a
// deleted cell must vanish from every read path — At, postings, BundleVector,
// UnionVectors, shard and span stores — and never resurface.
func TestDeleteTombstone(t *testing.T) {
	w := MustNew(4, 3)
	w.MustSet(0, 0, 10)
	w.MustSet(1, 0, 20)
	w.MustSet(1, 1, 30)
	w.MustSet(2, 0, 40)
	v0 := w.Version()
	if err := w.Delete(1, 0); err != nil {
		t.Fatal(err)
	}
	if w.Version() != v0+1 {
		t.Fatalf("version %d after delete, want %d", w.Version(), v0+1)
	}
	if err := w.Delete(1, 0); err != nil {
		t.Fatal(err)
	}
	if w.Version() != v0+1 {
		t.Fatal("deleting an absent cell bumped the version")
	}
	if w.At(1, 0) != 0 {
		t.Fatalf("At(1,0) = %g after delete", w.At(1, 0))
	}
	for _, e := range w.Postings(0) {
		if e.Consumer == 1 {
			t.Fatalf("deleted cell still in postings: %+v", e)
		}
	}
	if w.ItemTotal(0) != 50 || w.Total() != 80 {
		t.Fatalf("aggregates %g/%g after delete, want 50/80", w.ItemTotal(0), w.Total())
	}
	ids, _ := w.BundleVector([]int{0, 1}, 0, nil, nil)
	for _, u := range ids {
		if u == 1 {
			// Consumer 1 still holds item 1, so presence is fine — but the
			// vector value must exclude the deleted item-0 cell.
			if v := w.BundleWTP(1, []int{0, 1}, 0); v != 30 {
				t.Fatalf("bundle WTP %g for consumer 1, want 30", v)
			}
		}
	}
	aIDs, aVals := w.BundleVector([]int{0}, 0, nil, nil)
	bIDs, bVals := w.BundleVector([]int{1}, 0, nil, nil)
	uIDs, uVals := UnionVectors(aIDs, aVals, 1, bIDs, bVals, 1, nil, nil)
	for k, u := range uIDs {
		if u == 1 && uVals[k] != 30 {
			t.Fatalf("union resurfaces deleted cell: consumer 1 = %g, want 30", uVals[k])
		}
	}
	// The shard and a serialized span of it must agree: consumer 1 absent
	// from item 0's segment everywhere.
	sh := w.Shard(2)
	st := sh.Stripe(0)
	sids, _ := st.Item(0)
	for _, id := range sids {
		if id == 1 {
			t.Fatal("deleted cell present in shard stripe")
		}
	}
	sp, err := sh.Span(0, sh.Stripes()).Store()
	if err != nil {
		t.Fatal(err)
	}
	spIDs, _ := sp.BundleVector([]int{0}, 0, nil, nil)
	for _, id := range spIDs {
		if id == 1 {
			t.Fatal("deleted cell present in span store")
		}
	}
}
