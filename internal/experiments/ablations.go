package experiments

import (
	"fmt"
	"time"

	"bundling/internal/adoption"
	"bundling/internal/config"
	"bundling/internal/tabular"
	"bundling/internal/wtp"
)

// AblationRow records one design-choice toggle: the configuration revenue
// and running time with the design choice on (the default) and off.
type AblationRow struct {
	Name                    string
	OnRevenue, OffRevenue   float64
	OnSeconds, OffSeconds   float64
	RevenueDeltaPct         float64 // (off-on)/on × 100
	SpeedupFromDesignChoice float64 // offSeconds / onSeconds
}

// AblationResult collects the design-choice ablations DESIGN.md calls out:
//
//   - common-interest pruning (Sec. 5.3.1): lossless for θ ≤ 0, so turning
//     it off must not change revenue while costing time;
//   - bucketed sigmoid pricing (Sec. 4.2): the O(m+T²) approximation vs
//     the exact O(m·T) evaluation, which must agree on revenue within a
//     fraction of a percent while the bucketed path is faster on bundles
//     with many interested consumers;
//   - matching vs greedy (Sec. 5.3): the paper's own head-to-head, framed
//     as "what does dropping the global matching step cost".
type AblationResult struct {
	Rows []AblationRow
}

// Ablations runs the three studies on the environment.
func Ablations(env *Env, params config.Params) (*AblationResult, error) {
	res := &AblationResult{}

	// 1. Common-interest pruning (pure matching, θ = 0 where it is lossless).
	pruned := params
	pruned.Strategy = config.Pure
	unpruned := pruned
	unpruned.DisablePruning = true
	row, err := ablate("common-interest pruning (pure matching)",
		func() (float64, error) { return runRevenue(env, config.MatchingBased, pruned) },
		func() (float64, error) { return runRevenue(env, config.MatchingBased, unpruned) })
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, row)

	// 2. Bucketed vs exact sigmoid pricing (γ = 1 so the sigmoid matters).
	soft, err := adoption.New(1, 1, adoption.DefaultEpsilon)
	if err != nil {
		return nil, err
	}
	bucketed := params
	bucketed.Strategy = config.Mixed
	bucketed.Model = soft
	exact := bucketed
	exact.ExactSigmoid = true
	row, err = ablate("bucketed sigmoid pricing (mixed matching, γ=1)",
		func() (float64, error) { return runRevenue(env, config.MatchingBased, bucketed) },
		func() (float64, error) { return runRevenue(env, config.MatchingBased, exact) })
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, row)

	// 3. Global matching step vs greedy merging (mixed, θ = 0.05 so both
	// strategies have work to do).
	match := params
	match.Strategy = config.Mixed
	if match.Theta == 0 {
		match.Theta = 0.05
	}
	row, err = ablate("global matching step (vs greedy merging, mixed)",
		func() (float64, error) { return runRevenue(env, config.MatchingBased, match) },
		func() (float64, error) { return runRevenue(env, config.GreedyMerge, match) })
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, row)

	// 4. Greedy early stop vs the run-to-end alternative (Sec. 5.3.2): the
	// paper reports the exhaustive variant costs much more time for no
	// meaningful revenue.
	early := params
	early.Strategy = config.Pure
	if early.Theta == 0 {
		early.Theta = 0.05
	}
	exhaustive := early
	exhaustive.GreedyRunToEnd = true
	row, err = ablate("greedy early stop (vs run-to-single-bundle, pure)",
		func() (float64, error) { return runRevenue(env, config.GreedyMerge, early) },
		func() (float64, error) { return runRevenue(env, config.GreedyMerge, exhaustive) })
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, row)
	return res, nil
}

// runRevenue executes one algorithm and returns its revenue.
func runRevenue(env *Env, algo func(*wtp.Matrix, config.Params) (*config.Configuration, error), p config.Params) (float64, error) {
	cfg, err := algo(env.W, p)
	if err != nil {
		return 0, err
	}
	return cfg.Revenue, nil
}

// ablate times the "on" and "off" variants and assembles the row.
func ablate(name string, on, off func() (float64, error)) (AblationRow, error) {
	start := time.Now()
	onRev, err := on()
	if err != nil {
		return AblationRow{}, err
	}
	onSec := time.Since(start).Seconds()
	start = time.Now()
	offRev, err := off()
	if err != nil {
		return AblationRow{}, err
	}
	offSec := time.Since(start).Seconds()
	row := AblationRow{
		Name:      name,
		OnRevenue: onRev, OffRevenue: offRev,
		OnSeconds: onSec, OffSeconds: offSec,
	}
	if onRev > 0 {
		row.RevenueDeltaPct = (offRev - onRev) / onRev * 100
	}
	if onSec > 0 {
		row.SpeedupFromDesignChoice = offSec / onSec
	}
	return row, nil
}

// Render prints the ablation table.
func (r *AblationResult) Render() string {
	t := tabular.New("Ablations: design choices of DESIGN.md",
		"design choice", "revenue (on)", "revenue (off)", "Δrev%", "time on (s)", "time off (s)", "off/on time")
	for _, row := range r.Rows {
		t.AddRow(row.Name,
			fmt.Sprintf("%.0f", row.OnRevenue),
			fmt.Sprintf("%.0f", row.OffRevenue),
			fmt.Sprintf("%+.2f", row.RevenueDeltaPct),
			fmt.Sprintf("%.3f", row.OnSeconds),
			fmt.Sprintf("%.3f", row.OffSeconds),
			fmt.Sprintf("%.2f×", row.SpeedupFromDesignChoice),
		)
	}
	return t.String()
}
