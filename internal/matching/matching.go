// Package matching implements maximum-weight matching on general weighted
// graphs via Edmonds' blossom algorithm.
//
// The paper reduces optimal 2-sized bundle configuration to maximum-weight
// matching (Sec. 5.1) and uses the LEMON C++ library; this package is the
// from-scratch replacement. The implementation follows Galil's O(V³)
// primal-dual formulation (as popularized by van Rantwijk's reference
// implementation): vertex/blossom dual variables are maintained so that all
// edge slacks stay non-negative, augmenting paths are grown from free
// vertices, odd cycles are shrunk into blossoms, and dual adjustments are
// chosen as the minimum over the four classic delta cases.
//
// MaxWeight returns a matching that maximizes total edge weight; it is not
// required to be perfect, so edges with non-positive weight are never
// matched. This is exactly what the bundling reduction needs: an edge
// carries the revenue *gain* of merging two bundles, and unmatched vertices
// keep their self-loop (bundle stays as-is).
package matching

import "fmt"

// Edge is an undirected edge between two distinct vertices with a weight.
type Edge struct {
	U, V   int
	Weight float64
}

// MaxWeight computes a maximum-weight matching of the n-vertex graph with
// the given edges. It returns mate, where mate[v] is the vertex matched to
// v, or -1 if v is unmatched. Self-loops are rejected; parallel edges are
// allowed (the heavier one effectively wins).
func MaxWeight(n int, edges []Edge) ([]int, error) {
	if n < 0 {
		return nil, fmt.Errorf("matching: negative vertex count %d", n)
	}
	for _, e := range edges {
		if e.U == e.V {
			return nil, fmt.Errorf("matching: self-loop on vertex %d", e.U)
		}
		if e.U < 0 || e.U >= n || e.V < 0 || e.V >= n {
			return nil, fmt.Errorf("matching: edge (%d,%d) outside universe [0,%d)", e.U, e.V, n)
		}
	}
	if n == 0 || len(edges) == 0 {
		mate := make([]int, n)
		for i := range mate {
			mate[i] = -1
		}
		return mate, nil
	}
	s := newSolver(n, edges)
	s.solve()
	return s.mateVertices(), nil
}

// TotalWeight sums the weight of a matching produced by MaxWeight against
// the given edge list. Each matched pair contributes the maximum weight
// among parallel edges connecting it.
func TotalWeight(mate []int, edges []Edge) float64 {
	best := make(map[[2]int]float64, len(edges))
	for _, e := range edges {
		k := [2]int{min(e.U, e.V), max(e.U, e.V)}
		if w, ok := best[k]; !ok || e.Weight > w {
			best[k] = e.Weight
		}
	}
	var total float64
	for v, m := range mate {
		if m > v {
			total += best[[2]int{v, m}]
		}
	}
	return total
}

// solver carries the blossom algorithm state. Vertex ids are 0..n-1;
// blossom ids are n..2n-1. label values: 0 free, 1 S, 2 T, 5 breadcrumb.
type solver struct {
	n     int
	edges []Edge

	endpoint  []int   // endpoint[p]: vertex at endpoint p of edge p/2
	neighbend [][]int // per vertex: remote endpoints of incident edges

	mate     []int // per vertex: remote endpoint of matched edge, or -1
	label    []int
	labelEnd []int
	inBloss  []int // per vertex: top-level blossom containing it

	blossParent []int
	blossChilds [][]int
	blossBase   []int
	blossEndps  [][]int

	bestEdge       []int
	blossBestEdges [][]int
	unusedBloss    []int
	dualVar        []float64
	allowEdge      []bool
	queue          []int
}

func newSolver(n int, edges []Edge) *solver {
	s := &solver{n: n, edges: edges}
	maxWeight := 0.0
	for _, e := range edges {
		if e.Weight > maxWeight {
			maxWeight = e.Weight
		}
	}
	ne := len(edges)
	s.endpoint = make([]int, 2*ne)
	for p := range s.endpoint {
		if p%2 == 0 {
			s.endpoint[p] = edges[p/2].U
		} else {
			s.endpoint[p] = edges[p/2].V
		}
	}
	s.neighbend = make([][]int, n)
	for k, e := range edges {
		s.neighbend[e.U] = append(s.neighbend[e.U], 2*k+1)
		s.neighbend[e.V] = append(s.neighbend[e.V], 2*k)
	}
	s.mate = make([]int, n)
	for i := range s.mate {
		s.mate[i] = -1
	}
	s.label = make([]int, 2*n)
	s.labelEnd = make([]int, 2*n)
	s.inBloss = make([]int, n)
	s.blossParent = make([]int, 2*n)
	s.blossChilds = make([][]int, 2*n)
	s.blossBase = make([]int, 2*n)
	s.blossEndps = make([][]int, 2*n)
	s.bestEdge = make([]int, 2*n)
	s.blossBestEdges = make([][]int, 2*n)
	s.dualVar = make([]float64, 2*n)
	for i := 0; i < n; i++ {
		s.inBloss[i] = i
		s.blossBase[i] = i
		s.dualVar[i] = maxWeight
	}
	for i := 0; i < 2*n; i++ {
		s.labelEnd[i] = -1
		s.blossParent[i] = -1
		s.bestEdge[i] = -1
	}
	for i := n; i < 2*n; i++ {
		s.blossBase[i] = -1
	}
	s.unusedBloss = make([]int, 0, n)
	for b := n; b < 2*n; b++ {
		s.unusedBloss = append(s.unusedBloss, b)
	}
	s.allowEdge = make([]bool, ne)
	return s
}

// slack returns the (doubled) reduced cost of edge k.
func (s *solver) slack(k int) float64 {
	e := s.edges[k]
	return s.dualVar[e.U] + s.dualVar[e.V] - 2*e.Weight
}

// blossomLeaves calls fn for every vertex inside blossom b.
func (s *solver) blossomLeaves(b int, fn func(v int)) {
	if b < s.n {
		fn(b)
		return
	}
	for _, t := range s.blossChilds[b] {
		s.blossomLeaves(t, fn)
	}
}

// assignLabel labels the top-level blossom of w with t (1=S, 2=T) reached
// through endpoint p, and propagates: an S-blossom's vertices enter the
// scan queue; a T-blossom's base mate becomes S.
func (s *solver) assignLabel(w, t, p int) {
	b := s.inBloss[w]
	s.label[w] = t
	s.label[b] = t
	s.labelEnd[w] = p
	s.labelEnd[b] = p
	s.bestEdge[w] = -1
	s.bestEdge[b] = -1
	if t == 1 {
		s.blossomLeaves(b, func(v int) { s.queue = append(s.queue, v) })
	} else if t == 2 {
		base := s.blossBase[b]
		s.assignLabel(s.endpoint[s.mate[base]], 1, s.mate[base]^1)
	}
}

// scanBlossom traces back from v and w through alternating paths. It
// returns the base of a newly discovered blossom, or -1 if the paths reach
// distinct roots (an augmenting path exists).
func (s *solver) scanBlossom(v, w int) int {
	var path []int
	base := -1
	for v != -1 || w != -1 {
		b := s.inBloss[v]
		if s.label[b]&4 != 0 {
			base = s.blossBase[b]
			break
		}
		path = append(path, b)
		s.label[b] = 5
		if s.labelEnd[b] == -1 {
			v = -1
		} else {
			v = s.endpoint[s.labelEnd[b]]
			b = s.inBloss[v]
			v = s.endpoint[s.labelEnd[b]]
		}
		if w != -1 {
			v, w = w, v
		}
	}
	for _, b := range path {
		s.label[b] = 1
	}
	return base
}

// addBlossom shrinks the odd cycle through edge k with the given base
// vertex into a new S-blossom.
func (s *solver) addBlossom(base, k int) {
	v, w := s.edges[k].U, s.edges[k].V
	bb := s.inBloss[base]
	bv := s.inBloss[v]
	bw := s.inBloss[w]
	b := s.unusedBloss[len(s.unusedBloss)-1]
	s.unusedBloss = s.unusedBloss[:len(s.unusedBloss)-1]
	s.blossBase[b] = base
	s.blossParent[b] = -1
	s.blossParent[bb] = b
	var path, endps []int
	for bv != bb {
		s.blossParent[bv] = b
		path = append(path, bv)
		endps = append(endps, s.labelEnd[bv])
		v = s.endpoint[s.labelEnd[bv]]
		bv = s.inBloss[v]
	}
	path = append(path, bb)
	reverseInts(path)
	reverseInts(endps)
	endps = append(endps, 2*k)
	for bw != bb {
		s.blossParent[bw] = b
		path = append(path, bw)
		endps = append(endps, s.labelEnd[bw]^1)
		w = s.endpoint[s.labelEnd[bw]]
		bw = s.inBloss[w]
	}
	s.blossChilds[b] = path
	s.blossEndps[b] = endps
	s.label[b] = 1
	s.labelEnd[b] = s.labelEnd[bb]
	s.dualVar[b] = 0
	s.blossomLeaves(b, func(v int) {
		if s.label[s.inBloss[v]] == 2 {
			s.queue = append(s.queue, v)
		}
		s.inBloss[v] = b
	})
	// Merge least-slack edge lists of the sub-blossoms.
	bestEdgeTo := make([]int, 2*s.n)
	for i := range bestEdgeTo {
		bestEdgeTo[i] = -1
	}
	for _, sub := range path {
		var nblists [][]int
		if s.blossBestEdges[sub] == nil {
			s.blossomLeaves(sub, func(v int) {
				list := make([]int, 0, len(s.neighbend[v]))
				for _, p := range s.neighbend[v] {
					list = append(list, p/2)
				}
				nblists = append(nblists, list)
			})
		} else {
			nblists = [][]int{s.blossBestEdges[sub]}
		}
		for _, nblist := range nblists {
			for _, k := range nblist {
				i, j := s.edges[k].U, s.edges[k].V
				if s.inBloss[j] == b {
					i, j = j, i
				}
				_ = i
				bj := s.inBloss[j]
				if bj != b && s.label[bj] == 1 &&
					(bestEdgeTo[bj] == -1 || s.slack(k) < s.slack(bestEdgeTo[bj])) {
					bestEdgeTo[bj] = k
				}
			}
		}
		s.blossBestEdges[sub] = nil
		s.bestEdge[sub] = -1
	}
	var merged []int
	for _, k := range bestEdgeTo {
		if k != -1 {
			merged = append(merged, k)
		}
	}
	s.blossBestEdges[b] = merged
	s.bestEdge[b] = -1
	for _, k := range merged {
		if s.bestEdge[b] == -1 || s.slack(k) < s.slack(s.bestEdge[b]) {
			s.bestEdge[b] = k
		}
	}
}

// expandBlossom undoes the shrinking of blossom b. When endStage is false
// (mid-stage expansion of a T-blossom whose dual hit zero), the sub-blossoms
// on the alternating path through b are relabeled.
func (s *solver) expandBlossom(b int, endStage bool) {
	for _, sub := range s.blossChilds[b] {
		s.blossParent[sub] = -1
		switch {
		case sub < s.n:
			s.inBloss[sub] = sub
		case endStage && s.dualVar[sub] == 0:
			s.expandBlossom(sub, endStage)
		default:
			s.blossomLeaves(sub, func(v int) { s.inBloss[v] = sub })
		}
	}
	if !endStage && s.label[b] == 2 {
		entryChild := s.inBloss[s.endpoint[s.labelEnd[b]^1]]
		j := indexOf(s.blossChilds[b], entryChild)
		var jstep, endptrick int
		if j&1 != 0 {
			j -= len(s.blossChilds[b])
			jstep = 1
			endptrick = 0
		} else {
			jstep = -1
			endptrick = 1
		}
		p := s.labelEnd[b]
		for j != 0 {
			s.label[s.endpoint[p^1]] = 0
			s.label[s.endpoint[at(s.blossEndps[b], j-endptrick)^endptrick^1]] = 0
			s.assignLabel(s.endpoint[p^1], 2, p)
			s.allowEdge[at(s.blossEndps[b], j-endptrick)/2] = true
			j += jstep
			p = at(s.blossEndps[b], j-endptrick) ^ endptrick
			s.allowEdge[p/2] = true
			j += jstep
		}
		bv := at(s.blossChilds[b], j)
		s.label[s.endpoint[p^1]] = 2
		s.label[bv] = 2
		s.labelEnd[s.endpoint[p^1]] = p
		s.labelEnd[bv] = p
		s.bestEdge[bv] = -1
		j += jstep
		for at(s.blossChilds[b], j) != entryChild {
			bv := at(s.blossChilds[b], j)
			if s.label[bv] == 1 {
				j += jstep
				continue
			}
			reached := -1
			s.blossomLeaves(bv, func(v int) {
				if reached == -1 && s.label[v] != 0 {
					reached = v
				}
			})
			if reached != -1 {
				s.label[reached] = 0
				s.label[s.endpoint[s.mate[s.blossBase[bv]]]] = 0
				s.assignLabel(reached, 2, s.labelEnd[reached])
			}
			j += jstep
		}
	}
	s.label[b] = -1
	s.labelEnd[b] = -1
	s.blossChilds[b] = nil
	s.blossEndps[b] = nil
	s.blossBase[b] = -1
	s.blossBestEdges[b] = nil
	s.bestEdge[b] = -1
	s.unusedBloss = append(s.unusedBloss, b)
}

// augmentBlossom swaps matched/unmatched edges along the path inside
// blossom b from vertex v to the blossom base, making v the new base.
func (s *solver) augmentBlossom(b, v int) {
	t := v
	for s.blossParent[t] != b {
		t = s.blossParent[t]
	}
	if t >= s.n {
		s.augmentBlossom(t, v)
	}
	i := indexOf(s.blossChilds[b], t)
	j := i
	var jstep, endptrick int
	if i&1 != 0 {
		j -= len(s.blossChilds[b])
		jstep = 1
		endptrick = 0
	} else {
		jstep = -1
		endptrick = 1
	}
	for j != 0 {
		j += jstep
		t = at(s.blossChilds[b], j)
		p := at(s.blossEndps[b], j-endptrick) ^ endptrick
		if t >= s.n {
			s.augmentBlossom(t, s.endpoint[p])
		}
		j += jstep
		t = at(s.blossChilds[b], j)
		if t >= s.n {
			s.augmentBlossom(t, s.endpoint[p^1])
		}
		s.mate[s.endpoint[p]] = p ^ 1
		s.mate[s.endpoint[p^1]] = p
	}
	s.blossChilds[b] = rotate(s.blossChilds[b], i)
	s.blossEndps[b] = rotate(s.blossEndps[b], i)
	s.blossBase[b] = s.blossBase[s.blossChilds[b][0]]
}

// augmentMatching flips matched/unmatched edges along the augmenting path
// through edge k.
func (s *solver) augmentMatching(k int) {
	starts := [2][2]int{{s.edges[k].U, 2*k + 1}, {s.edges[k].V, 2 * k}}
	for _, sp := range starts {
		v, p := sp[0], sp[1]
		for {
			bs := s.inBloss[v]
			if bs >= s.n {
				s.augmentBlossom(bs, v)
			}
			s.mate[v] = p
			if s.labelEnd[bs] == -1 {
				break
			}
			t := s.endpoint[s.labelEnd[bs]]
			bt := s.inBloss[t]
			v = s.endpoint[s.labelEnd[bt]]
			j := s.endpoint[s.labelEnd[bt]^1]
			if bt >= s.n {
				s.augmentBlossom(bt, j)
			}
			s.mate[j] = s.labelEnd[bt]
			p = s.labelEnd[bt] ^ 1
		}
	}
}

// solve runs the stages of the primal-dual algorithm.
func (s *solver) solve() {
	n := s.n
	for stage := 0; stage < n; stage++ {
		for i := range s.label {
			s.label[i] = 0
		}
		for i := range s.bestEdge {
			s.bestEdge[i] = -1
		}
		for b := n; b < 2*n; b++ {
			s.blossBestEdges[b] = nil
		}
		for i := range s.allowEdge {
			s.allowEdge[i] = false
		}
		s.queue = s.queue[:0]
		for v := 0; v < n; v++ {
			if s.mate[v] == -1 && s.label[s.inBloss[v]] == 0 {
				s.assignLabel(v, 1, -1)
			}
		}
		augmented := false
		for {
			for len(s.queue) > 0 && !augmented {
				v := s.queue[len(s.queue)-1]
				s.queue = s.queue[:len(s.queue)-1]
				for _, p := range s.neighbend[v] {
					k := p / 2
					w := s.endpoint[p]
					if s.inBloss[v] == s.inBloss[w] {
						continue
					}
					var kslack float64
					if !s.allowEdge[k] {
						kslack = s.slack(k)
						if kslack <= 0 {
							s.allowEdge[k] = true
						}
					}
					if s.allowEdge[k] {
						switch {
						case s.label[s.inBloss[w]] == 0:
							s.assignLabel(w, 2, p^1)
						case s.label[s.inBloss[w]] == 1:
							base := s.scanBlossom(v, w)
							if base >= 0 {
								s.addBlossom(base, k)
							} else {
								s.augmentMatching(k)
								augmented = true
							}
						case s.label[w] == 0:
							s.label[w] = 2
							s.labelEnd[w] = p ^ 1
						}
						if augmented {
							break
						}
					} else if s.label[s.inBloss[w]] == 1 {
						b := s.inBloss[v]
						if s.bestEdge[b] == -1 || kslack < s.slack(s.bestEdge[b]) {
							s.bestEdge[b] = k
						}
					} else if s.label[w] == 0 {
						if s.bestEdge[w] == -1 || kslack < s.slack(s.bestEdge[w]) {
							s.bestEdge[w] = k
						}
					}
				}
			}
			if augmented {
				break
			}
			// Dual update: minimum of the four delta cases.
			deltaType := 1
			delta := s.dualVar[0]
			for v := 1; v < n; v++ {
				if s.dualVar[v] < delta {
					delta = s.dualVar[v]
				}
			}
			deltaEdge, deltaBlossom := -1, -1
			for v := 0; v < n; v++ {
				if s.label[s.inBloss[v]] == 0 && s.bestEdge[v] != -1 {
					if d := s.slack(s.bestEdge[v]); d < delta {
						delta, deltaType, deltaEdge = d, 2, s.bestEdge[v]
					}
				}
			}
			for b := 0; b < 2*n; b++ {
				if s.blossParent[b] == -1 && s.label[b] == 1 && s.bestEdge[b] != -1 {
					if d := s.slack(s.bestEdge[b]) / 2; d < delta {
						delta, deltaType, deltaEdge = d, 3, s.bestEdge[b]
					}
				}
			}
			for b := n; b < 2*n; b++ {
				if s.blossBase[b] >= 0 && s.blossParent[b] == -1 && s.label[b] == 2 {
					if s.dualVar[b] < delta {
						delta, deltaType, deltaBlossom = s.dualVar[b], 4, b
					}
				}
			}
			for v := 0; v < n; v++ {
				switch s.label[s.inBloss[v]] {
				case 1:
					s.dualVar[v] -= delta
				case 2:
					s.dualVar[v] += delta
				}
			}
			for b := n; b < 2*n; b++ {
				if s.blossBase[b] >= 0 && s.blossParent[b] == -1 {
					switch s.label[b] {
					case 1:
						s.dualVar[b] += delta
					case 2:
						s.dualVar[b] -= delta
					}
				}
			}
			switch deltaType {
			case 1:
				// Optimum reached for this stage structure; stop.
				return
			case 2:
				s.allowEdge[deltaEdge] = true
				i := s.edges[deltaEdge].U
				if s.label[s.inBloss[i]] == 0 {
					i = s.edges[deltaEdge].V
				}
				s.queue = append(s.queue, i)
			case 3:
				s.allowEdge[deltaEdge] = true
				s.queue = append(s.queue, s.edges[deltaEdge].U)
			case 4:
				s.expandBlossom(deltaBlossom, false)
			}
		}
		// End of stage: expand S-blossoms with zero dual so the next stage
		// starts from a canonical structure.
		for b := n; b < 2*n; b++ {
			if s.blossParent[b] == -1 && s.blossBase[b] >= 0 &&
				s.label[b] == 1 && s.dualVar[b] == 0 {
				s.expandBlossom(b, true)
			}
		}
	}
}

// mateVertices converts endpoint-based mates to vertex ids.
func (s *solver) mateVertices() []int {
	out := make([]int, s.n)
	for v := 0; v < s.n; v++ {
		if s.mate[v] >= 0 {
			out[v] = s.endpoint[s.mate[v]]
		} else {
			out[v] = -1
		}
	}
	return out
}

// at indexes a slice with Python-style negative wrap-around, which the
// blossom traversals rely on when walking backwards around a cycle.
func at(s []int, i int) int {
	if i < 0 {
		i += len(s)
	}
	return s[i]
}

func indexOf(s []int, x int) int {
	for i, v := range s {
		if v == x {
			return i
		}
	}
	panic("matching: child not found in blossom")
}

func rotate(s []int, i int) []int {
	out := make([]int, 0, len(s))
	out = append(out, s[i:]...)
	out = append(out, s[:i]...)
	return out
}

func reverseInts(s []int) {
	for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
		s[i], s[j] = s[j], s[i]
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
