// Package sim simulates consumers shopping against a bundle configuration.
//
// The paper's stochastic experiments (Fig. 3 and 4) average realized
// revenue over ten runs. This package provides that realization: each
// consumer walks the offer list in descending-surplus order and makes a
// Bernoulli purchase decision per the adoption model, never buying two
// offers that share an item. For a pure-bundling configuration (disjoint
// offers) under the deterministic step model this reduces exactly to the
// pricing package's expected-revenue computation, which the tests exploit
// as an oracle.
package sim

import (
	"math/rand"
	"sort"

	"bundling/internal/adoption"
	"bundling/internal/config"
	"bundling/internal/wtp"
)

// Outcome summarizes one simulated market run.
type Outcome struct {
	Revenue      float64
	Transactions int     // number of offers purchased
	Surplus      float64 // aggregate consumer surplus (WTP - price over purchases)
}

// Run simulates every consumer shopping against the configuration's offers
// and returns the realized totals. rng drives the stochastic adoption
// decisions; it is not used when the model is deterministic.
func Run(w *wtp.Matrix, cfg *config.Configuration, theta float64, model adoption.Model, rng *rand.Rand) Outcome {
	offers := cfg.Offers()
	var out Outcome
	type scored struct {
		offer   config.Bundle
		wtp     float64
		surplus float64
	}
	owned := make(map[int]bool)
	for u := 0; u < w.Consumers(); u++ {
		options := make([]scored, 0, len(offers))
		for _, off := range offers {
			v := w.BundleWTP(u, off.Items, bundleTheta(theta, len(off.Items)))
			if v <= 0 {
				continue
			}
			s := model.Alpha()*v - off.Price
			if s+adoption.DefaultEpsilon < 0 && model.Deterministic() {
				continue
			}
			options = append(options, scored{offer: off, wtp: v, surplus: s})
		}
		// Descending surplus; ties toward the larger payment (seller-
		// favorable, matching the pricing package's convention).
		sort.Slice(options, func(i, j int) bool {
			if options[i].surplus != options[j].surplus {
				return options[i].surplus > options[j].surplus
			}
			return options[i].offer.Price > options[j].offer.Price
		})
		for k := range owned {
			delete(owned, k)
		}
		for _, opt := range options {
			conflict := false
			for _, it := range opt.offer.Items {
				if owned[it] {
					conflict = true
					break
				}
			}
			if conflict {
				continue
			}
			if !model.Adopts(opt.offer.Price, opt.wtp, rng) {
				continue
			}
			for _, it := range opt.offer.Items {
				owned[it] = true
			}
			out.Revenue += opt.offer.Price
			out.Transactions++
			out.Surplus += opt.wtp - opt.offer.Price
		}
	}
	return out
}

// Average runs the simulation `runs` times and returns the mean outcome,
// the paper's ten-run averaging protocol.
func Average(w *wtp.Matrix, cfg *config.Configuration, theta float64, model adoption.Model, runs int, seed int64) Outcome {
	if runs < 1 {
		runs = 1
	}
	rng := rand.New(rand.NewSource(seed))
	var acc Outcome
	for r := 0; r < runs; r++ {
		o := Run(w, cfg, theta, model, rng)
		acc.Revenue += o.Revenue
		acc.Surplus += o.Surplus
		acc.Transactions += o.Transactions
	}
	acc.Revenue /= float64(runs)
	acc.Surplus /= float64(runs)
	acc.Transactions /= runs
	return acc
}

// bundleTheta applies the bundling coefficient only to true bundles; a
// single item's WTP is never θ-adjusted (Eq. 1 degenerates to the raw WTP).
func bundleTheta(theta float64, size int) float64 {
	if size <= 1 {
		return 0
	}
	return theta
}
