// Cabletv models the paper's motivating information-goods scenario: a
// cable-TV provider partitioning a channel lineup into a small number of
// large, non-overlapping packages (pure bundling, Sec. 3.2). For
// information goods the marginal cost is near zero, bundle sizes can grow
// to dozens of channels, and the provider compares an unconstrained lineup
// against capped package sizes.
//
// Run with:
//
//	go run ./examples/cabletv [-channels 60] [-households 1500]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"sort"

	"bundling"
)

func main() {
	channels := flag.Int("channels", 60, "number of channels")
	households := flag.Int("households", 1500, "number of households")
	flag.Parse()

	// Households value channels by genre affinity: each household follows
	// two of eight genres and values in-genre channels much higher. This
	// is exactly the diverse-willingness-to-pay setting where bundling
	// shines (Adams & Yellen).
	const genres = 8
	rng := rand.New(rand.NewSource(7))
	w := bundling.NewMatrix(*households, *channels)
	genreOf := make([]int, *channels)
	for c := range genreOf {
		genreOf[c] = c % genres
	}
	for h := 0; h < *households; h++ {
		g1, g2 := rng.Intn(genres), rng.Intn(genres)
		for c := 0; c < *channels; c++ {
			base := rng.Float64() * 2 // everyone zaps a little
			if genreOf[c] == g1 || genreOf[c] == g2 {
				base += 2 + rng.Float64()*6 // fans pay real money
			}
			if base > 0.5 {
				w.MustSet(h, c, base)
			}
		}
	}

	fmt.Printf("lineup: %d channels, %d households, total WTP $%.0f\n\n",
		*channels, *households, w.Total())

	alaCarte, err := bundling.SolveComponents(w, bundling.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("à la carte:            revenue $%.0f (%.1f%% coverage)\n",
		alaCarte.Revenue, bundling.Coverage(alaCarte, w))

	// Compare package-size caps: triple-play-sized mini bundles up to the
	// unconstrained lineup (the paper's Fig. 5 sweep).
	for _, k := range []int{3, 6, 12, bundling.Unlimited} {
		cfg, err := bundling.SolveMatching(w, bundling.Options{MaxBundleSize: k})
		if err != nil {
			log.Fatal(err)
		}
		label := fmt.Sprintf("packages of ≤%d", k)
		if k == bundling.Unlimited {
			label = "unconstrained packages"
		}
		gain := (cfg.Revenue - alaCarte.Revenue) / alaCarte.Revenue * 100
		fmt.Printf("%-22s revenue $%.0f (%.1f%% coverage, %+.1f%% vs à la carte, %d packages)\n",
			label+":", cfg.Revenue, bundling.Coverage(cfg, w), gain, len(cfg.Bundles))
	}

	// Show the final lineup for the unconstrained case.
	cfg, err := bundling.SolveMatching(w, bundling.Options{})
	if err != nil {
		log.Fatal(err)
	}
	sort.Slice(cfg.Bundles, func(i, j int) bool {
		return len(cfg.Bundles[i].Items) > len(cfg.Bundles[j].Items)
	})
	fmt.Println("\nfinal lineup (largest packages first):")
	for i, b := range cfg.Bundles {
		if i == 8 {
			fmt.Printf("  ... and %d more\n", len(cfg.Bundles)-8)
			break
		}
		fmt.Printf("  package %d: %2d channels at $%6.2f/mo → $%.0f\n",
			i+1, len(b.Items), b.Price, b.Revenue)
	}
}
