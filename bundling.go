// Package bundling finds revenue-maximizing bundle configurations from
// consumer preference data.
//
// It reproduces Do, Lauw and Wang, "Mining Revenue-Maximizing Bundling
// Configuration", PVLDB 8(5), 2015. Given a willingness-to-pay matrix —
// typically mined from ratings — the library partitions a seller's
// inventory into priced bundles (pure bundling) or layers bundles on top of
// individually sold components (mixed bundling) so as to maximize total
// expected revenue.
//
// # Quick start
//
//	w := bundling.NewMatrix(3, 2) // 3 consumers, 2 items
//	w.MustSet(0, 0, 12) // consumer 0 pays up to $12 for item 0
//	// ... fill the matrix ...
//	cfg, err := bundling.Configure(w, bundling.Options{})
//	// cfg.Bundles now holds the priced bundle partition.
//
// The Solve* functions expose the individual algorithms: SolveComponents
// (no bundling), SolveOptimal2 (exact for bundles up to two items),
// SolveMatching and SolveGreedy (the paper's heuristics for any bundle
// size), and SolveFreqItemset (the "frequently bought together" baseline).
//
// Willingness to pay can be mined from star ratings with FromRatings, or
// synthesized at any scale with the dataset generator in GenerateDataset.
// See the examples directory for end-to-end programs.
//
// # Performance
//
// The configuration algorithms run on an incremental merge-evaluation
// engine. Candidate merges derive the merged bundle's interested-consumer
// vector from the two parents' cached vectors in O(|a|+|b|)
// (wtp.UnionVectors) instead of rescanning the raw item postings; candidate
// pricing runs entirely in per-worker scratch buffers, materializing a
// bundle node only when a candidate survives the gain filter; mixed-bundling
// price search sweeps all T price levels in O(m·log m + T) by sorting
// consumers on their switch-threshold price rather than rescanning all m
// consumers per level; and both the initial pair seeding and the
// per-iteration re-pricing after each merge are evaluated by a chunked
// parallel worker pool (Options via config.Params.Parallelism; results are
// deterministic regardless of worker count).
//
// Measured on the 600×150 bench corpus (single core, see
// BENCH_greedy.json): mixed greedy 3.41s → 0.64s per run (5.3×) with 7.8×
// fewer allocations, mixed matching 1.79s → 0.37s (4.9×) with 7.4× fewer,
// pure variants ~1.9× faster with ~80× fewer allocations — with revenues
// matching the reference postings-scan path within 1e-9 (the fast path
// reorders float arithmetic), as enforced by the equivalence property
// tests in internal/config, internal/wtp and internal/pricing.
package bundling

import (
	"fmt"

	"bundling/internal/adoption"
	"bundling/internal/config"
	"bundling/internal/wtp"
)

// Matrix is an M consumers × N items willingness-to-pay matrix, the input
// of every bundling algorithm.
type Matrix = wtp.Matrix

// Rating is one (consumer, item, stars) observation used by FromRatings.
type Rating = wtp.Rating

// Bundle is one priced offer of a configuration.
type Bundle = config.Bundle

// Configuration is the result of a bundling algorithm: priced top-level
// bundles, retained components (mixed bundling), total expected revenue and
// an iteration trace.
type Configuration = config.Configuration

// Strategy selects pure or mixed bundling.
type Strategy = config.Strategy

// The two bundling strategies of the paper (Sec. 3.2).
const (
	Pure  = config.Pure
	Mixed = config.Mixed
)

// Unlimited disables the bundle size cap.
const Unlimited = config.Unlimited

// NewMatrix returns an all-zero willingness-to-pay matrix.
func NewMatrix(consumers, items int) *Matrix {
	return wtp.MustNew(consumers, items)
}

// FromRatings mines willingness to pay from star ratings (1..5) and item
// list prices using the paper's linear conversion with factor λ ≥ 1
// (Sec. 6.1.1): WTP = stars/5 · λ · price.
func FromRatings(consumers, items int, ratings []Rating, prices []float64, lambda float64) (*Matrix, error) {
	return wtp.FromRatings(consumers, items, ratings, prices, lambda)
}

// Options configures a bundling run. The zero value reproduces the paper's
// defaults (Table 3): pure bundling, θ = 0, unlimited bundle size,
// deterministic step adoption, 100 price levels.
type Options struct {
	// Strategy selects Pure (default) or Mixed bundling.
	Strategy Strategy
	// Theta is the bundling coefficient of Eq. 1: negative for substitute
	// items, zero for independent (default), positive for complements.
	// Must be > -1.
	Theta float64
	// MaxBundleSize caps bundle sizes (the paper's k); Unlimited (0)
	// disables the cap.
	MaxBundleSize int
	// Gamma is the stochastic price sensitivity (0 = step function). See
	// Sec. 4.1: lower values model noisier adoption decisions.
	Gamma float64
	// Alpha is the adoption bias (0 = unbiased, i.e. α = 1).
	Alpha float64
	// PriceLevels is the number of discrete price levels T (0 = 100).
	PriceLevels int
	// ProfitWeight is the seller's objective weight between profit and
	// consumer surplus: utility = weight·profit + (1-weight)·surplus
	// (paper Sec. 1). 0 selects the paper's default of 1 (profit only).
	// To optimize pure consumer surplus pass a tiny positive value; an
	// exact 0 is indistinguishable from "unset".
	ProfitWeight float64
	// UnitCosts holds per-item variable costs (nil = zero cost, the
	// information-goods setting where profit equals revenue). A bundle's
	// unit cost is the sum of its items' costs.
	UnitCosts []float64
}

func (o Options) params() (config.Params, error) {
	p := config.DefaultParams()
	p.Strategy = o.Strategy
	p.Theta = o.Theta
	p.K = o.MaxBundleSize
	if o.PriceLevels != 0 {
		p.PriceLevels = o.PriceLevels
	}
	if o.ProfitWeight != 0 {
		p.ProfitWeight = o.ProfitWeight
	}
	p.UnitCosts = o.UnitCosts
	gamma := o.Gamma
	if gamma == 0 {
		gamma = adoption.DefaultGamma
	}
	alpha := o.Alpha
	if alpha == 0 {
		alpha = adoption.DefaultAlpha
	}
	m, err := adoption.New(gamma, alpha, adoption.DefaultEpsilon)
	if err != nil {
		return p, err
	}
	p.Model = m
	if err := p.Validate(); err != nil {
		return p, err
	}
	return p, nil
}

// Configure finds a revenue-maximizing bundle configuration using the
// paper's matching-based heuristic (Algorithm 1), the method its evaluation
// recommends: it attains the highest revenue coverage in the least time and
// is optimal for bundle sizes up to two.
func Configure(w *Matrix, opts Options) (*Configuration, error) {
	return SolveMatching(w, opts)
}

// SolveComponents prices every item individually (no bundling) — the
// baseline every bundling strategy is measured against.
func SolveComponents(w *Matrix, opts Options) (*Configuration, error) {
	p, err := opts.params()
	if err != nil {
		return nil, err
	}
	return config.Components(w, p)
}

// SolveComponentsAt prices every item at the given fixed prices (e.g. a
// marketplace's list prices) instead of optimal prices.
func SolveComponentsAt(w *Matrix, prices []float64, opts Options) (*Configuration, error) {
	p, err := opts.params()
	if err != nil {
		return nil, err
	}
	return config.ComponentsAtPrices(w, prices, p)
}

// SolveOptimal2 solves the 2-sized bundling problem exactly via
// maximum-weight graph matching (Sec. 5.1). Options.MaxBundleSize is
// ignored (forced to 2).
func SolveOptimal2(w *Matrix, opts Options) (*Configuration, error) {
	p, err := opts.params()
	if err != nil {
		return nil, err
	}
	return config.Optimal2Sized(w, p)
}

// SolveMatching runs the matching-based heuristic (Algorithm 1) for
// arbitrary bundle sizes.
func SolveMatching(w *Matrix, opts Options) (*Configuration, error) {
	p, err := opts.params()
	if err != nil {
		return nil, err
	}
	return config.MatchingBased(w, p)
}

// SolveGreedy runs the greedy merge heuristic (Algorithm 2) for arbitrary
// bundle sizes.
func SolveGreedy(w *Matrix, opts Options) (*Configuration, error) {
	p, err := opts.params()
	if err != nil {
		return nil, err
	}
	return config.GreedyMerge(w, p)
}

// SolveFreqItemset runs the "frequently bought together" baseline: bundle
// candidates are maximal frequent itemsets of the consumers' interest
// transactions, greedily selected by revenue gain. minSupport is the
// relative minimum support; the paper tunes it to 0.001.
func SolveFreqItemset(w *Matrix, minSupport float64, opts Options) (*Configuration, error) {
	p, err := opts.params()
	if err != nil {
		return nil, err
	}
	if minSupport == 0 {
		minSupport = config.DefaultFreqItemsetOptions().MinSupport
	}
	return config.FreqItemset(w, p, config.FreqItemsetOptions{MinSupport: minSupport})
}

// Evaluate prices a caller-proposed configuration — the "what-if"
// counterpart of the Solve functions. offers lists the item sets to put on
// sale; the engine picks each offer's optimal price under opts. Offers
// must be pairwise disjoint under pure bundling and laminar (disjoint or
// nested) under mixed bundling; they need not cover every item.
func Evaluate(w *Matrix, offers [][]int, opts Options) (*Configuration, error) {
	p, err := opts.params()
	if err != nil {
		return nil, err
	}
	return config.Evaluate(w, offers, p)
}

// Coverage returns the revenue coverage (%) of a configuration: its revenue
// as a share of the aggregate willingness to pay, the upper bound of any
// revenue (Sec. 6.1.2).
func Coverage(cfg *Configuration, w *Matrix) float64 {
	if w.Total() <= 0 {
		return 0
	}
	return cfg.Revenue / w.Total() * 100
}

// Gain returns the revenue gain (%) of a configuration over the Components
// baseline computed with the same options.
func Gain(cfg *Configuration, w *Matrix, opts Options) (float64, error) {
	comp, err := SolveComponents(w, opts)
	if err != nil {
		return 0, err
	}
	if comp.Revenue <= 0 {
		return 0, fmt.Errorf("bundling: components baseline has no revenue")
	}
	return (cfg.Revenue - comp.Revenue) / comp.Revenue * 100, nil
}
