package matching

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// bruteForce finds the maximum-weight matching by exhaustive search over
// edge subsets. Exponential; only for small graphs.
func bruteForce(n int, edges []Edge) float64 {
	best := 0.0
	var rec func(idx int, used []bool, acc float64)
	rec = func(idx int, used []bool, acc float64) {
		if acc > best {
			best = acc
		}
		for i := idx; i < len(edges); i++ {
			e := edges[i]
			if used[e.U] || used[e.V] {
				continue
			}
			used[e.U], used[e.V] = true, true
			rec(i+1, used, acc+e.Weight)
			used[e.U], used[e.V] = false, false
		}
	}
	rec(0, make([]bool, n), 0)
	return best
}

func matchingWeight(t *testing.T, n int, edges []Edge) float64 {
	t.Helper()
	mate, err := MaxWeight(n, edges)
	if err != nil {
		t.Fatalf("MaxWeight: %v", err)
	}
	if len(mate) != n {
		t.Fatalf("mate length %d, want %d", len(mate), n)
	}
	for v, m := range mate {
		if m == -1 {
			continue
		}
		if m < 0 || m >= n {
			t.Fatalf("mate[%d]=%d out of range", v, m)
		}
		if mate[m] != v {
			t.Fatalf("asymmetric matching: mate[%d]=%d but mate[%d]=%d", v, m, m, mate[m])
		}
		if m == v {
			t.Fatalf("vertex %d matched to itself", v)
		}
	}
	return TotalWeight(mate, edges)
}

func TestEmptyGraph(t *testing.T) {
	mate, err := MaxWeight(0, nil)
	if err != nil {
		t.Fatalf("MaxWeight: %v", err)
	}
	if len(mate) != 0 {
		t.Fatalf("expected empty mate, got %v", mate)
	}
}

func TestNoEdges(t *testing.T) {
	mate, err := MaxWeight(3, nil)
	if err != nil {
		t.Fatalf("MaxWeight: %v", err)
	}
	for v, m := range mate {
		if m != -1 {
			t.Errorf("vertex %d should be unmatched, got %d", v, m)
		}
	}
}

func TestSelfLoopRejected(t *testing.T) {
	if _, err := MaxWeight(2, []Edge{{U: 1, V: 1, Weight: 3}}); err == nil {
		t.Fatal("expected error for self-loop")
	}
}

func TestOutOfRangeRejected(t *testing.T) {
	if _, err := MaxWeight(2, []Edge{{U: 0, V: 5, Weight: 3}}); err == nil {
		t.Fatal("expected error for out-of-range vertex")
	}
	if _, err := MaxWeight(-1, nil); err == nil {
		t.Fatal("expected error for negative n")
	}
}

func TestSingleEdge(t *testing.T) {
	got := matchingWeight(t, 2, []Edge{{0, 1, 5}})
	if got != 5 {
		t.Fatalf("weight = %g, want 5", got)
	}
}

func TestNegativeEdgeUnmatched(t *testing.T) {
	mate, err := MaxWeight(2, []Edge{{0, 1, -5}})
	if err != nil {
		t.Fatal(err)
	}
	if mate[0] != -1 || mate[1] != -1 {
		t.Fatalf("negative edge should not be matched: %v", mate)
	}
}

func TestPath3(t *testing.T) {
	// 0-1 (2), 1-2 (3): best is the single heavier edge.
	got := matchingWeight(t, 3, []Edge{{0, 1, 2}, {1, 2, 3}})
	if got != 3 {
		t.Fatalf("weight = %g, want 3", got)
	}
}

func TestPath4PrefersTwoEdges(t *testing.T) {
	// 0-1 (2), 1-2 (3), 2-3 (2): take the two outer edges (4) over middle.
	got := matchingWeight(t, 4, []Edge{{0, 1, 2}, {1, 2, 3}, {2, 3, 2}})
	if got != 4 {
		t.Fatalf("weight = %g, want 4", got)
	}
}

// The classic tricky cases from van Rantwijk's test suite: blossoms that
// must be created, used, expanded, and nested.
func TestKnownTrickyCases(t *testing.T) {
	// S-blossom creation and augmentation (van Rantwijk test case 20).
	mate, err := MaxWeight(6, []Edge{{1, 2, 8}, {1, 3, 9}, {2, 3, 10}, {3, 4, 7}})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{-1, 2, 1, 4, 3, -1}
	for v := range want {
		if v < len(mate) && mate[v] != want[v] {
			t.Fatalf("case20: mate=%v want %v", mate, want)
		}
	}
	// With extra edges forcing blossom use (test case 21).
	mate, err = MaxWeight(7, []Edge{{1, 2, 8}, {1, 3, 9}, {2, 3, 10}, {3, 4, 7}, {1, 6, 5}, {4, 6, 6}})
	if err != nil {
		t.Fatal(err)
	}
	got := TotalWeight(mate, []Edge{{1, 2, 8}, {1, 3, 9}, {2, 3, 10}, {3, 4, 7}, {1, 6, 5}, {4, 6, 6}})
	wantW := bruteForce(7, []Edge{{1, 2, 8}, {1, 3, 9}, {2, 3, 10}, {3, 4, 7}, {1, 6, 5}, {4, 6, 6}})
	if got != wantW {
		t.Fatalf("case21: weight %g want %g (mate=%v)", got, wantW, mate)
	}
}

// TestSBlossomExpansion exercises T-blossom expansion (van Rantwijk cases
// 30-34 analogues) by weight comparison against brute force.
func TestBlossomExpansionCases(t *testing.T) {
	cases := [][]Edge{
		// Create S-blossom, relabel as T-blossom, use for augmentation.
		{{1, 2, 9}, {1, 3, 8}, {2, 3, 10}, {1, 4, 5}, {4, 5, 4}, {1, 6, 3}},
		{{1, 2, 9}, {1, 3, 8}, {2, 3, 10}, {1, 4, 5}, {4, 5, 3}, {3, 6, 4}},
		// Create nested S-blossom, use for augmentation.
		{{1, 2, 9}, {1, 3, 9}, {2, 3, 10}, {2, 4, 8}, {3, 5, 8}, {4, 5, 10}, {5, 6, 6}},
		// Create S-blossom, relabel as S, include in nested S-blossom.
		{{1, 2, 10}, {1, 7, 10}, {2, 3, 12}, {3, 4, 20}, {3, 5, 20}, {4, 5, 25}, {5, 6, 10}, {6, 7, 10}, {7, 8, 8}},
		// Create nested S-blossom, augment, expand recursively.
		{{1, 2, 8}, {1, 3, 8}, {2, 3, 10}, {2, 4, 12}, {3, 5, 12}, {4, 5, 14}, {4, 6, 12}, {5, 7, 12}, {6, 7, 14}, {7, 8, 12}},
		// Create S-blossom, relabel as T, expand.
		{{1, 2, 23}, {1, 5, 22}, {1, 6, 15}, {2, 3, 25}, {3, 4, 22}, {4, 5, 25}, {4, 8, 14}, {5, 7, 13}},
		// Create nested S-blossom, relabel as T, expand.
		{{1, 2, 19}, {1, 3, 20}, {1, 8, 8}, {2, 3, 25}, {2, 4, 18}, {3, 5, 18}, {4, 5, 13}, {4, 7, 7}, {5, 6, 7}},
	}
	for ci, edges := range cases {
		n := 0
		for _, e := range edges {
			if e.U >= n {
				n = e.U + 1
			}
			if e.V >= n {
				n = e.V + 1
			}
		}
		got := matchingWeight(t, n, edges)
		want := bruteForce(n, edges)
		if got != want {
			t.Errorf("case %d: weight %g, want %g", ci, got, want)
		}
	}
}

func TestRandomGraphsAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 2000; trial++ {
		n := 2 + rng.Intn(9) // up to 10 vertices
		var edges []Edge
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Float64() < 0.5 {
					w := float64(rng.Intn(41) - 5) // occasionally negative
					edges = append(edges, Edge{u, v, w})
				}
			}
		}
		got := matchingWeight(t, n, edges)
		want := bruteForce(n, edges)
		if got != want {
			t.Fatalf("trial %d: n=%d edges=%v: weight %g, want %g", trial, n, edges, got, want)
		}
	}
}

func TestRandomFloatWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 500; trial++ {
		n := 2 + rng.Intn(7)
		var edges []Edge
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Float64() < 0.6 {
					edges = append(edges, Edge{u, v, rng.Float64() * 100})
				}
			}
		}
		got := matchingWeight(t, n, edges)
		want := bruteForce(n, edges)
		if diff := got - want; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("trial %d: weight %g, want %g", trial, got, want)
		}
	}
}

// TestQuickValidMatching property-tests structural validity on arbitrary
// random graphs via testing/quick.
func TestQuickValidMatching(t *testing.T) {
	f := func(seed int64, nRaw uint8, density uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%40) + 1
		p := 0.1 + float64(density%80)/100
		var edges []Edge
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Float64() < p {
					edges = append(edges, Edge{u, v, rng.Float64()*50 - 5})
				}
			}
		}
		mate, err := MaxWeight(n, edges)
		if err != nil {
			return false
		}
		// Validity: symmetric, no self-match, matched pairs connected by an
		// actual edge.
		adj := make(map[[2]int]bool)
		for _, e := range edges {
			adj[[2]int{e.U, e.V}] = true
			adj[[2]int{e.V, e.U}] = true
		}
		for v, m := range mate {
			if m == -1 {
				continue
			}
			if m == v || mate[m] != v || !adj[[2]int{v, m}] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestLargeSparseGraphRuns(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 200
	var edges []Edge
	for u := 0; u < n; u++ {
		for k := 0; k < 5; k++ {
			v := rng.Intn(n)
			if v != u {
				edges = append(edges, Edge{u, v, rng.Float64() * 10})
			}
		}
	}
	mate, err := MaxWeight(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	// Greedy lower bound: matching weight should beat a naive greedy pick.
	w := TotalWeight(mate, edges)
	if w <= 0 {
		t.Fatalf("expected positive matching weight, got %g", w)
	}
}

func TestTotalWeightParallelEdges(t *testing.T) {
	edges := []Edge{{0, 1, 3}, {1, 0, 7}}
	mate, err := MaxWeight(2, edges)
	if err != nil {
		t.Fatal(err)
	}
	if got := TotalWeight(mate, edges); got != 7 {
		t.Fatalf("parallel edge weight = %g, want 7", got)
	}
}
