package codec_test

import (
	"encoding/json"
	"reflect"
	"testing"

	"bundling/internal/codec"
	"bundling/internal/wtp"
)

// encodedJSONLen is the JSON byte size of v, the baseline the size tests
// compare against.
func encodedJSONLen(t *testing.T, v any) int {
	t.Helper()
	buf, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return len(buf)
}

// seedCorpus adds the valid envelopes plus classic hostile shapes to a fuzz
// corpus.
func seedCorpus(f *testing.F, valid ...[]byte) {
	for _, b := range valid {
		f.Add(b)
	}
	f.Add([]byte{})
	f.Add([]byte{0xBC, 'X', 1})
	f.Add([]byte{0xBC, 'X', 1, 0x01, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Add([]byte(`{"consumers":3}`))
}

// The fuzz targets pin the decoder contract: arbitrary input either decodes
// or returns an error — never a panic, and never an allocation beyond the
// input's own size class (the length guards make oversized prefixes fail
// before any column is allocated; a violation would OOM the fuzz worker).
// Successful decodes must re-encode and decode back to the same document.

func FuzzDecodeMatrix(f *testing.F) {
	valid, err := codec.EncodeMatrix(&codec.MatrixData{Consumers: 3, Items: 2, Entries: [][3]float64{{0, 0, 1.5}, {2, 1, 0.25}}})
	if err != nil {
		f.Fatal(err)
	}
	seedCorpus(f, valid)
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := codec.DecodeMatrix(data)
		if err != nil {
			return
		}
		// Hostile-but-accepted ids can sit outside int64 after the float
		// conversion, which re-encoding rejects; that is fine — the contract
		// is no panic, and re-encodable documents must round-trip.
		buf, err := codec.EncodeMatrix(m)
		if err != nil {
			return
		}
		again, err := codec.DecodeMatrix(buf)
		if err != nil || !reflect.DeepEqual(again, m) {
			t.Fatalf("re-encoded matrix did not round-trip: %v", err)
		}
	})
}

func FuzzDecodeSpan(f *testing.F) {
	seedCorpus(f, []byte{0xBC, 'X', 1, 0x02, 4, 2, 2, 0, 1, 1, 0, 0, 0, 0, 0, 0, 0, 3, 0, 2, 2, 1, 0, 1, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := codec.DecodeSpan(data)
		if err != nil {
			return
		}
		again, err := codec.DecodeSpan(codec.EncodeSpan(d))
		if err != nil || !reflect.DeepEqual(again, d) {
			t.Fatalf("re-encoded span did not round-trip: %v", err)
		}
		// A structurally invalid span must fail Store(), not panic — the
		// worker-side guarantee for binary-fed assigns.
		_, _ = d.Store()
	})
}

func FuzzDecodeRecord(f *testing.F) {
	valid, err := codec.EncodeRecord(&codec.Record{
		ID: "c", Tenant: "t", Generation: 2, Entries: 1,
		OptionsJSON: []byte(`{}`),
		Matrix:      codec.MatrixData{Consumers: 2, Items: 1, Entries: [][3]float64{{0, 0, 2.5}}},
	})
	if err != nil {
		f.Fatal(err)
	}
	seedCorpus(f, valid)
	f.Fuzz(func(t *testing.T, data []byte) {
		rec, err := codec.DecodeRecord(data)
		if err != nil {
			return
		}
		buf, err := codec.EncodeRecord(rec)
		if err != nil {
			return
		}
		again, err := codec.DecodeRecord(buf)
		if err != nil {
			t.Fatalf("re-encoded record did not decode: %v", err)
		}
		if again.ID != rec.ID || again.Tenant != rec.Tenant || again.Generation != rec.Generation {
			t.Fatal("re-encoded record changed identity")
		}
	})
}

func FuzzDecodeDelta(f *testing.F) {
	valid := codec.EncodeDelta(codec.DeltaFromCells("c", 3, []wtp.Cell{
		{Consumer: 0, Item: 1, Value: 2.5},
		{Consumer: 4, Item: 0, Delete: true},
		{Consumer: 2, Item: 1, Value: 0.25},
	}))
	seedCorpus(f, valid)
	// Hostile shapes specific to the delta payload: misaligned columns,
	// out-of-range and descending delete indices, a value on a deleted cell.
	f.Add([]byte{0xBC, 'X', 1, 0x05, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 2, 0, 2, 1, 0, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := codec.DecodeDelta(data)
		if err != nil {
			return
		}
		again, err := codec.DecodeDelta(codec.EncodeDelta(d))
		if err != nil || !reflect.DeepEqual(again, d) {
			t.Fatalf("re-encoded delta did not round-trip: %v", err)
		}
		// A decoded delta must always convert to cells without panicking,
		// and the cells must survive the column round-trip.
		cells := d.Cells()
		back := codec.DeltaFromCells(d.ID, d.IfGeneration, cells)
		if !reflect.DeepEqual(back.Consumers, d.Consumers) || !reflect.DeepEqual(back.Values, d.Values) {
			t.Fatal("cells did not round-trip through columns")
		}
	})
}

func FuzzDecodeAssign(f *testing.F) {
	seedCorpus(f, []byte{0xBC, 'X', 1, 0x04, 1, 1, 'c', 0, 4, 2, 2, 0, 1, 1, 0, 0, 0, 0, 0, 0, 0, 3, 0, 2, 2, 1, 0, 1, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		corpus, span, err := codec.DecodeAssign(data)
		if err != nil {
			return
		}
		c2, s2, err := codec.DecodeAssign(codec.EncodeAssign(corpus, span))
		if err != nil || c2 != corpus || !reflect.DeepEqual(s2, span) {
			t.Fatalf("re-encoded assign did not round-trip: %v", err)
		}
	})
}
