// Package setpack solves weighted set packing over the complete bundle
// universe of N items, the formulation the paper uses to obtain optimal
// pure-bundling configurations for small N (Sec. 5.2).
//
// The paper feeds all 2^N−1 candidate bundles to the Gurobi ILP solver;
// Gurobi is proprietary, so this package provides two exact from-scratch
// solvers — a subset-convolution dynamic program (O(3^N), the practical
// choice up to N ≈ 18) and a branch-and-bound search with an admissible
// per-item bound — plus the √N-approximation greedy ("Greedy WSP") that the
// paper compares against. All solvers operate on a dense weight vector
// indexed by item bitmask, which is exactly the artifact the experiment
// harness produces by pricing every subset.
//
// Weights must be non-negative (bundle revenues are). Under that invariant
// the optimal packing can be assumed to cover every item: any uncovered
// item can be added as a singleton without decreasing the objective, so the
// solvers branch only over sets that cover the lowest uncovered item.
package setpack

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
)

// MaxItems bounds N so bitmask arithmetic stays in range and the dense
// weight vector stays addressable.
const MaxItems = 30

// Result is a packing: disjoint item masks and their total weight.
type Result struct {
	Masks  []int
	Weight float64
}

// validate checks the (n, weights) contract shared by all solvers.
func validate(n int, weights []float64) error {
	if n < 0 || n > MaxItems {
		return fmt.Errorf("setpack: n=%d outside [0,%d]", n, MaxItems)
	}
	if len(weights) != 1<<uint(n) {
		return fmt.Errorf("setpack: got %d weights, want 2^%d=%d", len(weights), n, 1<<uint(n))
	}
	for m, w := range weights {
		if w < 0 {
			return fmt.Errorf("setpack: negative weight %g for mask %b", w, m)
		}
	}
	return nil
}

// ExactDP computes the optimal packing by dynamic programming over item
// subsets: f(S) = best packing weight using only the items in S, with the
// recurrence branching on the subsets of S that contain S's lowest item.
// Complexity O(3^N) time, O(2^N) space. weights[mask] is the weight of the
// bundle with that item mask; weights[0] is ignored.
func ExactDP(n int, weights []float64) (Result, error) {
	if err := validate(n, weights); err != nil {
		return Result{}, err
	}
	size := 1 << uint(n)
	f := make([]float64, size)
	choice := make([]int, size)
	for S := 1; S < size; S++ {
		low := S & -S
		rest := S ^ low
		// Option: leave the low item unpacked.
		best := f[rest]
		bestChoice := 0
		// Option: pack the low item with some subset b ⊆ S, low ∈ b.
		for sub := rest; ; sub = (sub - 1) & rest {
			b := sub | low
			if v := weights[b] + f[S^b]; v > best {
				best, bestChoice = v, b
			}
			if sub == 0 {
				break
			}
		}
		f[S] = best
		choice[S] = bestChoice
	}
	res := Result{Weight: f[size-1]}
	for S := size - 1; S != 0; {
		b := choice[S]
		if b == 0 {
			S ^= S & -S
			continue
		}
		res.Masks = append(res.Masks, b)
		S ^= b
	}
	sort.Ints(res.Masks)
	return res, nil
}

// ExactBB computes the optimal packing by depth-first branch and bound.
// The admissible bound credits every uncovered item with the best
// weight-per-item share among bundles containing it. A greedy incumbent
// seeds the search. Worst case exponential; useful as a cross-check and for
// sparse weight vectors where pruning bites.
func ExactBB(n int, weights []float64) (Result, error) {
	if err := validate(n, weights); err != nil {
		return Result{}, err
	}
	if n == 0 {
		return Result{}, nil
	}
	size := 1 << uint(n)
	// Per-item best weight share, for the admissible bound.
	share := make([]float64, n)
	for m := 1; m < size; m++ {
		if weights[m] == 0 {
			continue
		}
		per := weights[m] / float64(bits.OnesCount(uint(m)))
		rem := m
		for rem != 0 {
			i := bits.TrailingZeros(uint(rem))
			if per > share[i] {
				share[i] = per
			}
			rem &= rem - 1
		}
	}
	// Suffix bound: ub[S] = Σ share[i] for i ∈ S would need 2^N space;
	// compute incrementally during DFS instead.
	greedy, err := GreedyRatio(n, weights)
	if err != nil {
		return Result{}, err
	}
	b := &bbState{n: n, weights: weights, share: share,
		bestWeight: greedy.Weight, bestMasks: append([]int(nil), greedy.Masks...)}
	full := size - 1
	b.dfs(full, 0, nil)
	sort.Ints(b.bestMasks)
	return Result{Masks: b.bestMasks, Weight: b.bestWeight}, nil
}

type bbState struct {
	n          int
	weights    []float64
	share      []float64
	bestWeight float64
	bestMasks  []int
}

func (b *bbState) bound(remaining int) float64 {
	var ub float64
	for rem := remaining; rem != 0; rem &= rem - 1 {
		ub += b.share[bits.TrailingZeros(uint(rem))]
	}
	return ub
}

func (b *bbState) dfs(remaining int, acc float64, chosen []int) {
	if remaining == 0 {
		if acc > b.bestWeight {
			b.bestWeight = acc
			b.bestMasks = append([]int(nil), chosen...)
		}
		return
	}
	if acc+b.bound(remaining) <= b.bestWeight {
		return
	}
	low := remaining & -remaining
	rest := remaining ^ low
	// Branch over every bundle containing the low item (weights ≥ 0 make
	// covering never worse than skipping), plus the "skip" branch for
	// completeness when the low item carries no weight anywhere.
	for sub := rest; ; sub = (sub - 1) & rest {
		mask := sub | low
		if w := b.weights[mask]; w > 0 || mask == low {
			b.dfs(remaining^mask, acc+w, append(chosen, mask))
		}
		if sub == 0 {
			break
		}
	}
}

// GreedyRatio implements the paper's "Greedy WSP" baseline: repeatedly pick
// the candidate with the highest weight density, discard overlapping
// candidates, until no candidate remains. Density is w/√|S| — the ordering
// of Gonen & Lehmann's greedy, which carries the √N approximation guarantee
// the paper cites (plain weight-per-item ordering does not).
func GreedyRatio(n int, weights []float64) (Result, error) {
	if err := validate(n, weights); err != nil {
		return Result{}, err
	}
	size := 1 << uint(n)
	order := make([]int, 0, size-1)
	for m := 1; m < size; m++ {
		if weights[m] > 0 {
			order = append(order, m)
		}
	}
	ratio := func(m int) float64 { return weights[m] / math.Sqrt(float64(bits.OnesCount(uint(m)))) }
	sort.Slice(order, func(a, b int) bool {
		ra, rb := ratio(order[a]), ratio(order[b])
		if ra != rb {
			return ra > rb
		}
		return order[a] < order[b]
	})
	var res Result
	taken := 0
	for _, m := range order {
		if taken&m == 0 {
			res.Masks = append(res.Masks, m)
			res.Weight += weights[m]
			taken |= m
		}
	}
	sort.Ints(res.Masks)
	return res, nil
}

// Candidate is an explicit weighted set for the list-based greedy used by
// baselines that don't enumerate the full universe (e.g. frequent-itemset
// bundling feeds mined itemsets here).
type Candidate struct {
	Items  []int
	Weight float64
}

// GreedyCandidates packs an explicit candidate list by descending weight
// density (w/√|S|, as in GreedyRatio), skipping candidates that overlap
// earlier picks.
func GreedyCandidates(cands []Candidate) Result {
	order := make([]int, len(cands))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ca, cb := cands[order[a]], cands[order[b]]
		ra := ca.Weight / math.Sqrt(math.Max(1, float64(len(ca.Items))))
		rb := cb.Weight / math.Sqrt(math.Max(1, float64(len(cb.Items))))
		if ra != rb {
			return ra > rb
		}
		return order[a] < order[b]
	})
	used := make(map[int]bool)
	var res Result
	for _, idx := range order {
		c := cands[idx]
		ok := c.Weight > 0
		for _, it := range c.Items {
			if used[it] {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		mask := 0
		for _, it := range c.Items {
			used[it] = true
			if it < MaxItems {
				mask |= 1 << uint(it)
			}
		}
		res.Masks = append(res.Masks, mask)
		res.Weight += c.Weight
	}
	return res
}
