package config

import (
	"context"
	"fmt"
)

// Algorithm is one bundle-configuration strategy runnable on a Solver
// session. The five implementations — components, optimal2, matching,
// greedy, freqitemset — cover the paper's proposed algorithms and baselines;
// experiments, benchmarks and CLIs iterate over Algorithms() instead of
// switch-casing entry points.
type Algorithm interface {
	// Name is the stable identifier used by CLIs and reports.
	Name() string
	// Solve runs the algorithm on the session. Implementations must not
	// mutate session state: all per-run bookkeeping lives in a run engine.
	// A canceled context aborts the run at its next iteration boundary with
	// the context's error.
	Solve(ctx context.Context, s *Solver) (*Configuration, error)
}

// componentsAlg prices every item individually — the no-bundling baseline.
type componentsAlg struct{}

func (componentsAlg) Name() string { return "components" }

func (componentsAlg) Solve(ctx context.Context, s *Solver) (*Configuration, error) {
	e := s.newEngineCtx(ctx)
	defer e.release()
	return e.components()
}

// optimal2Alg solves the 2-sized problem exactly via maximum-weight
// matching (Sec. 5.1): with k = 2 every merge uses two singletons, so
// Algorithm 1 halts after one productive iteration at the matching optimum.
// The size cap is a run-local override; it never touches the session's k.
type optimal2Alg struct{}

func (optimal2Alg) Name() string { return "optimal2" }

func (optimal2Alg) Solve(ctx context.Context, s *Solver) (*Configuration, error) {
	e := s.newEngineCtx(ctx)
	defer e.release()
	e.k = 2
	return e.matching()
}

// matchingAlg is the paper's Algorithm 1: iterated maximum-weight matching.
type matchingAlg struct{}

func (matchingAlg) Name() string { return "matching" }

func (matchingAlg) Solve(ctx context.Context, s *Solver) (*Configuration, error) {
	e := s.newEngineCtx(ctx)
	defer e.release()
	return e.matching()
}

// greedyAlg is the paper's Algorithm 2: highest-gain pair merging.
type greedyAlg struct{}

func (greedyAlg) Name() string { return "greedy" }

func (greedyAlg) Solve(ctx context.Context, s *Solver) (*Configuration, error) {
	e := s.newEngineCtx(ctx)
	defer e.release()
	return e.greedy()
}

// freqItemsetAlg is the "frequently bought together" baseline with its
// mining options.
type freqItemsetAlg struct {
	opts FreqItemsetOptions
}

func (freqItemsetAlg) Name() string { return "freqitemset" }

func (a freqItemsetAlg) Solve(ctx context.Context, s *Solver) (*Configuration, error) {
	e := s.newEngineCtx(ctx)
	defer e.release()
	return e.freqItemset(a.opts)
}

// ComponentsAlgorithm returns the individual-pricing baseline.
func ComponentsAlgorithm() Algorithm { return componentsAlg{} }

// Optimal2Algorithm returns the exact 2-sized solver.
func Optimal2Algorithm() Algorithm { return optimal2Alg{} }

// MatchingAlgorithm returns the matching-based heuristic (Algorithm 1).
func MatchingAlgorithm() Algorithm { return matchingAlg{} }

// GreedyAlgorithm returns the greedy merge heuristic (Algorithm 2).
func GreedyAlgorithm() Algorithm { return greedyAlg{} }

// FreqItemsetAlgorithm returns the frequent-itemset baseline with the given
// mining options, passed through verbatim (MinSupport 0 keeps only the
// absolute two-consumer floor; use DefaultFreqItemsetOptions for the
// paper's tuned setting).
func FreqItemsetAlgorithm(opts FreqItemsetOptions) Algorithm {
	return freqItemsetAlg{opts: opts}
}

// Algorithms lists the five algorithms with default options, in the paper's
// presentation order.
func Algorithms() []Algorithm {
	return []Algorithm{
		ComponentsAlgorithm(),
		Optimal2Algorithm(),
		MatchingAlgorithm(),
		GreedyAlgorithm(),
		FreqItemsetAlgorithm(DefaultFreqItemsetOptions()),
	}
}

// AlgorithmByName resolves a stable algorithm name (see Algorithms) to its
// default-configured implementation.
func AlgorithmByName(name string) (Algorithm, error) {
	for _, a := range Algorithms() {
		if a.Name() == name {
			return a, nil
		}
	}
	return nil, fmt.Errorf("config: unknown algorithm %q", name)
}
