package main

// The cluster experiment benchmarks distributed stripe-sharded solving: it
// builds in-process bundleworker fleets of 1, 2 and 4 workers, partitions
// the bench corpus's stripes across them, and drives the scatter/gather
// evaluate path through cluster.Solver, comparing throughput and latency
// against the single-machine bundling.Solver on the same offer workload.
// Every cluster result is checked against the local result within 1e-9 —
// the harness fails on any mismatch, so the committed BENCH_cluster.json is
// also an equivalence certificate. With -benchout it writes
// BENCH_cluster.json, the scale-out companion of BENCH_serve.json.

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"bundling"
	"bundling/internal/cluster"
	"bundling/internal/config"
	"bundling/internal/experiments"
)

// ClusterRun is one configuration's measured evaluate throughput.
type ClusterRun struct {
	Workers     int          `json:"workers"` // 0 = single-machine baseline
	Spans       int          `json:"spans,omitempty"`
	RPS         float64      `json:"requests_per_second"`
	DurationSec float64      `json:"duration_seconds"`
	Latency     ServeLatency `json:"latency"`
	RemoteCalls int64        `json:"remote_calls,omitempty"`
	Refeeds     int64        `json:"refeeds,omitempty"`
	Fallbacks   int64        `json:"local_fallbacks,omitempty"`
}

// ClusterReport is the file schema of BENCH_cluster.json.
type ClusterReport struct {
	GeneratedAt string `json:"generated_at"`
	Scale       string `json:"scale"`
	Users       int    `json:"users"`
	Items       int    `json:"items"`
	Go          string `json:"go"`
	NumCPU      int    `json:"numcpu"`
	MaxProcs    int    `json:"maxprocs"`
	StripeSize  int    `json:"stripe_size"`
	Stripes     int    `json:"stripes"`
	Concurrency int    `json:"concurrency"`
	Requests    int    `json:"requests"`
	OfferPool   int    `json:"offer_pool"`

	// MaxRelDiff is the largest relative revenue difference observed between
	// any cluster evaluate and its single-machine counterpart (must be
	// ≤ 1e-9 for the harness to succeed).
	MaxRelDiff float64 `json:"max_rel_diff"`

	Local   ClusterRun   `json:"local"`
	Cluster []ClusterRun `json:"cluster"`
}

// runCluster measures the scatter/gather evaluate path against the local
// solver at 1, 2 and 4 in-process workers.
func runCluster(env *experiments.Env, scaleName, outPath string, base config.Params, conc, totalReqs int) error {
	users := env.W.Consumers()
	// Size stripes so the bench corpus splits into enough independent spans
	// for a 4-worker fleet to matter (the library default of 1024 consumers
	// per stripe leaves a 600-user corpus as a single work unit).
	stripeSize := (users + 7) / 8
	opts := bundling.Options{
		Theta:         base.Theta,
		MaxBundleSize: base.K,
		Parallelism:   base.Parallelism,
		StripeSize:    stripeSize,
	}
	local, err := bundling.NewSolver(env.W, opts)
	if err != nil {
		return err
	}
	st := local.Stats()

	// A pool of distinct valid offer families; requests cycle through it so
	// every evaluate does real pricing work (cluster.Solver has no result
	// cache — that lives a layer up, in the serving daemon).
	pool := offerPool(env.W.Items(), 32)
	want := make([]*bundling.Configuration, len(pool))
	for i, offers := range pool {
		if want[i], err = local.Evaluate(offers); err != nil {
			return fmt.Errorf("local evaluate %d: %w", i, err)
		}
	}

	report := ClusterReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Scale:       scaleName,
		Users:       users,
		Items:       env.W.Items(),
		Go:          runtime.Version(),
		NumCPU:      runtime.NumCPU(),
		MaxProcs:    runtime.GOMAXPROCS(0),
		StripeSize:  stripeSize,
		Stripes:     st.Stripes,
		Concurrency: conc,
		Requests:    totalReqs,
		OfferPool:   len(pool),
	}

	evalThrough := func(eval func(offers [][]int) (*bundling.Configuration, error)) (ClusterRun, error) {
		lat := make([]time.Duration, totalReqs)
		var cursor atomic.Int64
		var errMu sync.Mutex
		var firstErr error
		var maxDiff atomicFloat
		var wg sync.WaitGroup
		start := time.Now()
		for w := 0; w < conc; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(cursor.Add(1)) - 1
					if i >= totalReqs {
						return
					}
					p := i % len(pool)
					t0 := time.Now()
					cfg, err := eval(pool[p])
					lat[i] = time.Since(t0)
					if err != nil {
						errMu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						errMu.Unlock()
						return
					}
					denom := 1 + math.Abs(want[p].Revenue)
					maxDiff.max(math.Abs(cfg.Revenue-want[p].Revenue) / denom)
				}
			}()
		}
		wg.Wait()
		dur := time.Since(start)
		if firstErr != nil {
			return ClusterRun{}, firstErr
		}
		if d := maxDiff.load(); d > 1e-9 {
			return ClusterRun{}, fmt.Errorf("cluster/local revenue diverged: max relative diff %g > 1e-9", d)
		}
		if d := maxDiff.load(); d > report.MaxRelDiff {
			report.MaxRelDiff = d
		}
		return ClusterRun{
			RPS:         float64(totalReqs) / dur.Seconds(),
			DurationSec: dur.Seconds(),
			Latency:     latencySummary(lat),
		}, nil
	}

	if report.Local, err = evalThrough(local.Evaluate); err != nil {
		return fmt.Errorf("local baseline: %w", err)
	}
	fmt.Printf("cluster: local baseline %.1f eval/s (p50 %.2fms p99 %.2fms) over %d stripes\n",
		report.Local.RPS, report.Local.Latency.P50, report.Local.Latency.P99, st.Stripes)

	for _, workers := range []int{1, 2, 4} {
		transports := make([]cluster.Transport, workers)
		for i := range transports {
			transports[i] = cluster.NewLocal(cluster.NewWorker(cluster.WorkerConfig{}), fmt.Sprintf("inproc-%d", i))
		}
		cs, err := cluster.NewSolver(env.W, opts, cluster.Config{Workers: transports})
		if err != nil {
			return err
		}
		run, err := evalThrough(cs.Evaluate)
		if err != nil {
			return fmt.Errorf("%d workers: %w", workers, err)
		}
		cst := cs.ClusterStats()
		run.Workers = workers
		run.Spans = cst.Spans
		run.RemoteCalls = cst.RemoteCalls
		run.Refeeds = cst.Refeeds
		run.Fallbacks = cst.LocalFallbacks
		report.Cluster = append(report.Cluster, run)
		fmt.Printf("cluster: %d workers (%d spans): %.1f eval/s (p50 %.2fms p99 %.2fms), %d RPCs, %d fallbacks\n",
			workers, cst.Spans, run.RPS, run.Latency.P50, run.Latency.P99, cst.RemoteCalls, cst.LocalFallbacks)
	}
	fmt.Printf("cluster: max relative revenue diff vs local: %g (bound 1e-9)\n", report.MaxRelDiff)

	if outPath == "" || outPath == "-" {
		return nil
	}
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", outPath)
	return nil
}

// offerPool builds n distinct disjoint offer families over the item
// universe, deterministically.
func offerPool(items, n int) [][][]int {
	pool := make([][][]int, n)
	for p := range pool {
		var offers [][]int
		for o := 0; o < 10; o++ {
			start := (p*17 + o*13) % (items - 3)
			offers = append(offers, []int{start, start + 1, start + 2})
		}
		pool[p] = disjointOffers(offers, items)
	}
	return pool
}

// atomicFloat tracks a running maximum across goroutines.
type atomicFloat struct{ bits atomic.Uint64 }

func (a *atomicFloat) max(v float64) {
	for {
		old := a.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if a.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

func (a *atomicFloat) load() float64 { return math.Float64frombits(a.bits.Load()) }
