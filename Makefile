# Developer entry points. CI runs `make check`; `make bench` refreshes the
# machine-readable perf trajectory in BENCH_greedy.json so performance PRs
# have a baseline to regress against.

GO ?= go
NPROC ?= $(shell nproc 2>/dev/null || echo 2)

.PHONY: build test vet fmt race check smoke chaos linkcheck bench bench-parallel bench-serve bench-cluster bench-chaos bench-codec fuzz profile tracing-gate usage-gate mutate-gate mutate-gate-fast

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Fail when any file is not gofmt-clean (CI gate).
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

test:
	$(GO) test ./...

# Race-check the packages with lock-free parallel paths (chunked evalPairs,
# shared Solver sessions, per-stripe farming, the serving registry/batcher,
# the cluster coordinator's scatter/gather fan-out).
race:
	$(GO) test -race ./internal/config/ ./internal/pricing/ ./internal/wtp/ ./internal/codec/ ./internal/server/ ./internal/cluster/ ./client/

check: fmt vet build test race linkcheck

# Fail on broken intra-repo markdown links in README.md and docs/ (the
# docs CI job's gate; external URLs are not fetched).
linkcheck:
	./scripts/checklinks.sh

# Boot the bundled daemon on a sample corpus and drive the client smoke
# test against it (fails on any non-200). CI runs this after `check`.
smoke:
	./scripts/smoke.sh

# Fault-injection suite under the race detector: chaos transports (errors,
# stale spans, blackholes, partitions), breaker trip/probe/recover cycles,
# overload shedding, deadline propagation and panic recovery. CI runs this
# as its own job; it is slower than `race` because blackhole scenarios wait
# out real RPC deadlines.
chaos:
	$(GO) test -race -run 'TestChaos|TestBreaker|TestSolveContext|TestEvaluateContext|TestLimiter|TestOverload|TestDeadline|TestPanic|TestBatcher' ./internal/cluster/ ./internal/server/

# Benchmark the algorithm hot paths (one-shot and warm-session rows) at
# bench scale and write machine-readable results. Compare against the
# committed BENCH_greedy.json before and after performance work.
bench:
	$(GO) run ./cmd/bundlebench -exp perf -benchout BENCH_greedy.json

# Same benchmark with the candidate-pricing worker pool pinned to the
# machine's core count, written to a separate file so multi-core runs are
# distinguishable from the single-core trajectory (the report records
# numcpu/maxprocs/parallelism).
bench-parallel:
	$(GO) run ./cmd/bundlebench -exp perf -parallel $(NPROC) -benchout BENCH_parallel.json

# Load-test the serving subsystem (in-process server + HTTP client) and
# write requests/sec, tail latency and cache/batching counters to
# BENCH_serve.json, the serving companion of BENCH_greedy.json. The run
# drives the load with the span recorder off and on, records both
# throughputs and the relative cost (rps_tracing_off/on,
# tracing_overhead_pct), and prints a machine-greppable tracing_gate line.
bench-serve:
	$(GO) run ./cmd/bundlebench -exp serve -servereqs 2000 -serveconc 16 -benchout BENCH_serve.json

# CI perf gates: fail when the span recorder or the workload accountant
# costs more than its budget of serving throughput (one bench run prints
# both machine-greppable gate lines).
tracing-gate:
	$(GO) run ./cmd/bundlebench -exp serve -servereqs 2000 -serveconc 16 | tee /tmp/serve-bench.out
	grep -q 'tracing_gate=ok' /tmp/serve-bench.out
	grep -q 'usage_gate=ok' /tmp/serve-bench.out

# The usage gate standalone (same bench run, gating only the accountant).
usage-gate:
	$(GO) run ./cmd/bundlebench -exp serve -servereqs 2000 -serveconc 16 | tee /tmp/serve-bench.out
	grep -q 'usage_gate=ok' /tmp/serve-bench.out

# Profile the serving load: whole-run CPU and exit heap profiles for
# `go tool pprof` (for a live daemon, use -pprof and /debug/pprof instead).
profile:
	$(GO) run ./cmd/bundlebench -exp serve -servereqs 2000 -serveconc 16 -cpuprofile cpu.pprof -memprofile mem.pprof
	@echo "wrote cpu.pprof and mem.pprof; inspect with: go tool pprof cpu.pprof"

# Benchmark distributed stripe-sharded solving: the scatter/gather evaluate
# path over 1/2/4 in-process workers vs the single-machine Solver, with
# every result equivalence-checked within 1e-9 (BENCH_cluster.json).
bench-cluster:
	$(GO) run ./cmd/bundlebench -exp cluster -servereqs 400 -serveconc 4 -benchout BENCH_cluster.json

# Benchmark the resilience layer: the distributed evaluate path over a
# 3-worker fleet with fault-injecting transports at 0/10/30% error rates,
# recording throughput, p99 and the fallback rate while equivalence-checking
# every result against the single-machine solver (BENCH_chaos.json).
bench-chaos:
	$(GO) run ./cmd/bundlebench -exp chaos -benchout BENCH_chaos.json

# Certify the binary columnar codec at the paper's corpus scale: payload
# bytes and encode/decode throughput vs JSON for the matrix, span-feed and
# corpus-record envelopes, plus all five algorithms solved over a binary-fed
# HTTP worker fleet and equivalence-checked within 1e-9 (on a recorded
# solver-tractable slice of the corpus — full-scale pair pricing takes
# hours). The harness fails if the span or record payload exceeds half its
# JSON size, so the committed BENCH_codec.json is a size and correctness
# certificate.
bench-codec:
	$(GO) run ./cmd/bundlebench -exp codec -scale full -benchout BENCH_codec.json

# Certify the incremental mutation path at the paper's corpus scale: a
# 1-cell PATCH delta (decode, per-stripe posting maintenance, singleton
# repair, registry swap) timed against a full binary re-upload through a
# real HTTP server, with every mutation replayed onto a shadow matrix and
# the patched session equivalence-checked against a from-scratch rebuild
# within 1e-9. Fails unless the 1-cell delta costs under 5% of the
# re-upload, so the committed BENCH_mutate.json is a cost and correctness
# certificate for delta upserts.
mutate-gate:
	$(GO) run ./cmd/bundlebench -exp mutate -scale full -benchout BENCH_mutate.json
	grep -q '"gate_passed": true' BENCH_mutate.json

# The same gate at bench scale (seconds, not minutes) for the per-PR CI job.
mutate-gate-fast:
	$(GO) run ./cmd/bundlebench -exp mutate | tee /tmp/mutate-bench.out
	grep -q 'mutate_gate=ok' /tmp/mutate-bench.out

# Short fuzz pass over the incremental-union equivalence property, then over
# each binary codec decoder (truncated, corrupt and hostile inputs must
# error — never panic or over-allocate). `go test -fuzz` takes one target
# per run, hence the loop.
fuzz:
	$(GO) test ./internal/wtp -fuzz FuzzUnionVectors -fuzztime 30s -run '^$$'
	for f in FuzzDecodeMatrix FuzzDecodeSpan FuzzDecodeRecord FuzzDecodeAssign FuzzDecodeDelta; do \
		$(GO) test ./internal/codec -fuzz $$f -fuzztime 15s -run '^$$' || exit 1; \
	done
