package obs

import "sync"

// Ring is a bounded buffer of finished traces, newest first — the store
// behind /debug/traces. The zero value is unusable; construct with NewRing.
// A nil *Ring is a valid no-op sink (tracing disabled).
type Ring struct {
	mu   sync.Mutex
	buf  []TraceDoc
	next int
	n    int
}

// NewRing returns a ring keeping the most recent capacity traces
// (capacity <= 0 selects 128).
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		capacity = 128
	}
	return &Ring{buf: make([]TraceDoc, capacity)}
}

// Push records a finished trace, evicting the oldest when full.
func (r *Ring) Push(doc TraceDoc) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.buf[r.next] = doc
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
	r.mu.Unlock()
}

// Snapshot returns up to limit recent traces, newest first (limit <= 0 =
// all retained).
func (r *Ring) Snapshot(limit int) []TraceDoc {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.n
	if limit > 0 && limit < n {
		n = limit
	}
	out := make([]TraceDoc, 0, n)
	for i := 1; i <= n; i++ {
		out = append(out, r.buf[(r.next-i+len(r.buf))%len(r.buf)])
	}
	return out
}
